// Fixture: analyzer-barrier-phase must fire when a CLB_BARRIER_PHASE
// function is entered from shard-window execution context — a
// CLB_SHARD_CONFINED function or a WorkerTeam::run_round task body —
// without an in_window() guard, at the exact line of the call.
#include "cloudlb_mock.h"

namespace fixture {

CLB_BARRIER_PHASE void run_lb_step();

// Confined handler crossing straight into the barrier phase.
CLB_SHARD_CONFINED void on_message(cloudlb::ShardedRuntimeHost& host) {
  (void)host;
  run_lb_step();  // EXPECT-ANALYZER(barrier-phase)
}

// Worker-team task bodies execute inside a window by construction.
void window_loop(cloudlb::WorkerTeam& team) {
  team.run_round([](int worker) {
    (void)worker;
    run_lb_step();  // EXPECT-ANALYZER(barrier-phase)
  });
}

// A guard on unrelated state is not an in_window() guard.
CLB_SHARD_CONFINED void guarded_wrong(bool drained) {
  if (drained) {
    run_lb_step();  // EXPECT-ANALYZER(barrier-phase)
  }
}

}  // namespace fixture

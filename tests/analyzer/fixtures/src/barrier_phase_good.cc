// Fixture: patterns analyzer-barrier-phase must NOT flag — guarded
// crossovers, barrier-to-barrier calls, coordinator-side calls, and
// deferred lambdas (which run at a different simulated time).
#include "cloudlb_mock.h"

namespace fixture {

CLB_BARRIER_PHASE void run_lb_step();
CLB_BARRIER_PHASE void merge_windows();

// Coordinator code (unannotated, no worker bodies) drives the barrier
// phase freely.
void coordinate() { run_lb_step(); }

// Barrier-phase helpers compose.
CLB_BARRIER_PHASE void full_sync() {
  run_lb_step();
  merge_windows();
}

// The blessed crossover: the last shard out of the window runs the
// step, gated on in_window().
CLB_SHARD_CONFINED void maybe_finish(cloudlb::ShardedRuntimeHost& host) {
  if (!host.in_window()) {
    run_lb_step();
  }
}

// The guard may sit anywhere in the condition.
CLB_SHARD_CONFINED void finish_if_idle(cloudlb::ShardedRuntimeHost& host,
                                       bool idle) {
  if (idle && !host.in_window()) merge_windows();
}

// A lambda scheduled from confined context runs between windows, not in
// this one; the enclosing effect does not flow into its body.
CLB_SHARD_CONFINED void defer_step(cloudlb::EngineCore& eng) {
  eng.schedule_after(cloudlb::SimTime::millis(1), [] { run_lb_step(); });
}

// Suppression: a deliberate same-window crossover, documented in place.
CLB_SHARD_CONFINED void forced_step() {
  run_lb_step();  // NOLINT-CLOUDLB(analyzer-barrier-phase)
}

}  // namespace fixture

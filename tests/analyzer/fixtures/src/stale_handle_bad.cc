// Fixture: analyzer-stale-handle must fire on every use of an
// EventHandle after Simulator::cancel retired it, at the exact line of
// the stale read.
#include "cloudlb_mock.h"

namespace fixture {

void observe(cloudlb::EventHandle h);

// The canonical bug: cancel, then hand the dead handle onwards.
void cancel_then_read(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  observe(h);  // EXPECT-ANALYZER(stale-handle)
}

// Probing validity of a retired handle is still a read of dead state.
bool cancel_then_valid(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  return h.valid();  // EXPECT-ANALYZER(stale-handle)
}

// Cancelling twice: the second cancel acts on a slot that may already
// hold an unrelated event.
void double_cancel(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  static_cast<void>(sim.cancel(h));  // EXPECT-ANALYZER(stale-handle)
}

// Member handles are tracked like locals.
struct Meter {
  cloudlb::Simulator* sim;
  cloudlb::EventHandle tick;
  void stop() {
    static_cast<void>(sim->cancel(tick));
    observe(tick);  // EXPECT-ANALYZER(stale-handle)
  }
};

// The sharded engine's shard-stamped handle dies the same way when
// ShardedSimulator::cancel retires it.
void observe_shard(cloudlb::ShardEventHandle h);

void sharded_cancel_then_read(cloudlb::ShardedSimulator& sim,
                              cloudlb::ShardEventHandle h) {
  static_cast<void>(sim.cancel(h));
  observe_shard(h);  // EXPECT-ANALYZER(stale-handle)
}

// Reading the shard stamp off a retired handle is dead state too.
int sharded_cancel_then_shard(cloudlb::ShardedSimulator& sim,
                              cloudlb::ShardEventHandle h) {
  static_cast<void>(sim.cancel(h));
  return h.shard();  // EXPECT-ANALYZER(stale-handle)
}

void sharded_double_cancel(cloudlb::ShardedSimulator& sim,
                           cloudlb::ShardEventHandle h) {
  static_cast<void>(sim.cancel(h));
  static_cast<void>(sim.cancel(h));  // EXPECT-ANALYZER(stale-handle)
}

}  // namespace fixture

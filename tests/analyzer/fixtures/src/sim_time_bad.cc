// Fixture: analyzer-sim-time fires on SimTime arithmetic that bypasses
// the strong type's factories — bare floating literals as scale factors
// and raw nanosecond counts compared against bare literals.
#include "cloudlb_mock.h"

namespace fixture {

cloudlb::SimTime scaled(cloudlb::SimTime t) {
  return t * 1.5;  // EXPECT-ANALYZER(sim-time)
}

cloudlb::SimTime scaled_left(cloudlb::SimTime t) {
  return 0.5 * t;  // EXPECT-ANALYZER(sim-time)
}

bool raw_equal(cloudlb::SimTime t) {
  return t.ns() == 500;  // EXPECT-ANALYZER(sim-time)
}

bool raw_less_reversed(cloudlb::SimTime t) {
  return 100 < t.ns();  // EXPECT-ANALYZER(sim-time)
}

}  // namespace fixture

// Fixture: patterns analyzer-float-merge must NOT flag — combiners own
// their fold order, integer accumulation is associative, and loop-local
// floats never cross iterations.
#include "cloudlb_mock.h"

namespace fixture {

struct CLB_SHARD_CONFINED ShardSegment {
  double cpu_seconds = 0.0;
  int tasks_executed = 0;
};

class Partition {
 public:
  int shards() const { return 4; }
  ShardSegment segs[4];
};

void consume(double value);

// The blessed home for the fold: a CLB_CANONICAL_COMBINE helper, whose
// annotation pins (and documents) the merge order.
CLB_CANONICAL_COMBINE double combined_cpu(const Partition& part) {
  double total = 0.0;
  for (int s = 0; s < part.shards(); ++s) {
    total += part.segs[s].cpu_seconds;
  }
  return total;
}

// Integer accumulation over the same data is associative and exempt.
CLB_BARRIER_PHASE int combined_tasks(const Partition& part) {
  int total = 0;
  for (int s = 0; s < part.shards(); ++s) {
    total += part.segs[s].tasks_executed;
  }
  return total;
}

// A float that lives and dies inside one iteration carries no
// cross-shard order.
CLB_BARRIER_PHASE void per_shard_report(const Partition& part) {
  for (int s = 0; s < part.shards(); ++s) {
    double scaled = part.segs[s].cpu_seconds;
    scaled += 1.0;
    consume(scaled);
  }
}

// Loops with no per-shard touch are out of scope entirely.
double plain_sum(const double* xs, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += xs[i];
  return total;
}

// Suppression: a deliberately unordered debug estimate.
CLB_BARRIER_PHASE double rough_cpu(const Partition& part) {
  double total = 0.0;
  for (int s = 0; s < part.shards(); ++s) {
    total +=  // NOLINT-CLOUDLB(analyzer-float-merge)
        part.segs[s].cpu_seconds;
  }
  return total;
}

}  // namespace fixture

// Fixture: patterns analyzer-stale-handle must NOT flag — the repo's
// blessed cancel-then-reassign idioms, checked cancels, and lambda
// bodies (which run at a different simulated time and are opaque to the
// source-order analysis).
#include "cloudlb_mock.h"

#define FIXTURE_CHECK(cond) ((cond) ? (void)0 : fixture::fail())

namespace fixture {

void fail();
void observe(cloudlb::EventHandle h);

// cancel then rearm: the reassignment revives the handle.
void cancel_then_rearm(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  h = sim.schedule_after(cloudlb::SimTime::millis(5), [] {});
  observe(h);
}

// cancel then reset to the null handle, then probe: the idiom core.cc
// and power.cc use.
void reset_to_null(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  h = cloudlb::EventHandle{};
  if (h.valid()) observe(h);
}

// The handle read inside the cancel call itself is part of the cancel,
// including through a CLB_CHECK-style macro.
void checked_macro(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  FIXTURE_CHECK(sim.cancel(h));
  h = cloudlb::EventHandle{};
}

// A lambda capturing the handle runs later (or never); no ordering fact
// about this body applies inside it.
void lambda_is_opaque(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
  static_cast<void>(
      sim.schedule_after(cloudlb::SimTime::millis(1), [&h] { observe(h); }));
}

// The sharded handle revives through reassignment exactly like the
// legacy one.
void observe_shard(cloudlb::ShardEventHandle h);

void sharded_cancel_then_rearm(cloudlb::ShardedSimulator& sim,
                               cloudlb::ShardEventHandle h) {
  static_cast<void>(sim.cancel(h));
  h = sim.schedule_after(0, cloudlb::SimTime::millis(5), [] {});
  observe_shard(h);
}

}  // namespace fixture

// Fixture: analyzer-shard-confined must fire wherever a
// CLB_SHARD_CONFINED member is touched by a function that is not
// reachable (within one call) from an annotated window-execution entry
// point, at the exact line of the member access.
#include "cloudlb_mock.h"

namespace fixture {

// Record-level confinement: every field of the segment is shard-private.
struct CLB_SHARD_CONFINED ShardSegment {
  int tasks_executed = 0;
  long long busy_ns = 0;
};

class Runtime {
 public:
  CLB_SHARD_CONFINED void on_task();  // window-execution entry point
  void report_progress();             // coordinator-side, unannotated
  int shard_count() const { return 4; }

  ShardSegment seg;
  // Field-level confinement inside an otherwise shared record.
  CLB_SHARD_CONFINED int inflight_per_shard[8];
};

CLB_SHARD_CONFINED void Runtime::on_task() { seg.tasks_executed += 1; }

// Unannotated free function reaching into a confined record's field.
int peek_tasks(const Runtime& rt) {
  return rt.seg.tasks_executed;  // EXPECT-ANALYZER(shard-confined)
}

// The this-access exemption covers record-level annotations only: a
// field-level CLB_SHARD_CONFINED member stays confined even from the
// owning class's own unannotated methods.
void Runtime::report_progress() {
  inflight_per_shard[0] += 1;  // EXPECT-ANALYZER(shard-confined)
}

// Reachability follows exactly one level of calls: a helper's helper is
// outside the annotated entry point's blast radius.
void deep_helper(Runtime& rt) {
  rt.seg.busy_ns += 2;  // EXPECT-ANALYZER(shard-confined)
}

void near_helper(Runtime& rt) { deep_helper(rt); }

CLB_SHARD_CONFINED void window_tick(Runtime& rt) { near_helper(rt); }

}  // namespace fixture

// Fixture: analyzer-ambient-state fires on type-resolved entropy and
// wall-clock reads (the regex linter sees spellings; this check sees
// the actual callee, so none of these could hide behind an alias).
#include "cloudlb_mock.h"

namespace fixture {

unsigned entropy() {
  std::random_device device;  // EXPECT-ANALYZER(ambient-state)
  return device();
}

long stamp() {
  return time(nullptr);  // EXPECT-ANALYZER(ambient-state)
}

int noise() {
  return rand();  // EXPECT-ANALYZER(ambient-state)
}

// Resolved through an alias the regex linter cannot follow.
using clock_alias = std::chrono::steady_clock;
clock_alias::time_point tick() {
  return clock_alias::now();  // EXPECT-ANALYZER(ambient-state)
}

}  // namespace fixture

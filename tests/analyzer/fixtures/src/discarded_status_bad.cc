// Fixture: analyzer-discarded-status fires when a status-returning
// CloudLB API is called in statement position with the result dropped.
#include "cloudlb_mock.h"

namespace fixture {

// cancel's bool says whether anything was actually cancelled.
void drop_cancel(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  sim.cancel(h);  // EXPECT-ANALYZER(discarded-status)
}

// Parsing for the side effect of validation still hands back the plan.
void drop_parse(const char* spec) {
  cloudlb::FaultPlan::parse(spec);  // EXPECT-ANALYZER(discarded-status)
}

// Statement position includes un-braced control-flow bodies.
void drop_in_if(cloudlb::Simulator& sim, cloudlb::EventHandle h, bool go) {
  if (go) sim.cancel(h);  // EXPECT-ANALYZER(discarded-status)
}

// Named status APIs are covered even without [[nodiscard]] spelled at
// the declaration.
void drop_migration(int chare) {
  cloudlb::attempt_migration(chare);  // EXPECT-ANALYZER(discarded-status)
}

}  // namespace fixture

// Fixture: cross-shard cancel patterns analyzer-stale-handle must NOT
// flag — same-engine round trips, computed shard indices (statically
// unknown), origins moved by reassignment, and mixed accessor kinds
// (engine_of_pe(0) and engine_of_node(0) may name the same engine).
#include "cloudlb_mock.h"

namespace fixture {

// Schedule and cancel through the same engine.
void same_engine(cloudlb::ShardedRuntimeHost& host) {
  cloudlb::EventHandle h = host.engine_of_shard(2).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  static_cast<void>(host.engine_of_shard(2).cancel(h));
  h = cloudlb::EventHandle{};
}

// Computed indices are not statically comparable; stay silent.
void computed_index(cloudlb::ShardedRuntimeHost& host, int s) {
  cloudlb::EventHandle h = host.engine_of_shard(s).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  static_cast<void>(host.engine_of_shard(s + 1).cancel(h));
  h = cloudlb::EventHandle{};
}

// Reassignment moves the origin with the handle.
void rearmed(cloudlb::ShardedRuntimeHost& host) {
  cloudlb::EventHandle h = host.engine_of_shard(0).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  h = host.engine_of_shard(1).schedule_at(cloudlb::SimTime::millis(9),
                                          [] {});
  static_cast<void>(host.engine_of_shard(1).cancel(h));
  h = cloudlb::EventHandle{};
}

// Different accessor kinds can resolve to one engine; only a same-kind
// index mismatch is statically certain.
void pe_vs_node(cloudlb::ShardedRuntimeHost& host) {
  cloudlb::EventHandle h = host.engine_of_pe(0).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  static_cast<void>(host.engine_of_node(0).cancel(h));
  h = cloudlb::EventHandle{};
}

// Suppression: a deliberate foreign-engine sweep.
void swept(cloudlb::ShardedRuntimeHost& host) {
  cloudlb::EventHandle h = host.engine_of_core(0).schedule_at(
      cloudlb::SimTime::millis(5), [] {});
  static_cast<void>(
      host.engine_of_core(1).cancel(h));  // NOLINT-CLOUDLB(analyzer-stale-handle)
  h = cloudlb::EventHandle{};
}

}  // namespace fixture

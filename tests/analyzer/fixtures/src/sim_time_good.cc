// Fixture: SimTime arithmetic analyzer-sim-time must accept — named
// factors, exact integer scaling, the zero probe, and typed
// comparisons.
#include "cloudlb_mock.h"

namespace fixture {

constexpr double kSlackFactor = 1.5;

// The factor has a name; intent is documented at the definition.
cloudlb::SimTime named_factor(cloudlb::SimTime t) { return t * kSlackFactor; }

// Integer scaling stays exact in the int64 nanosecond domain.
cloudlb::SimTime halved(cloudlb::SimTime t) { return t / 2; }

// `.ns() == 0` is the unambiguous emptiness probe.
bool is_zero(cloudlb::SimTime t) { return t.ns() == 0; }

// Comparing within the strong type needs no raw counts.
bool at_least_500ns(cloudlb::SimTime t) {
  return t == cloudlb::SimTime::nanos(500) ||
         cloudlb::SimTime::nanos(500) < t;
}

}  // namespace fixture

// Fixture: analyzer-unordered-accum fires when a range-for over an
// unordered container folds values in iteration (hash) order — float
// accumulators, sequence appends, and the same two patterns one helper
// call down.
#include "cloudlb_mock.h"

namespace fixture {

// Float addition is not associative: the sum depends on hash order.
double order_dependent_sum(const std::unordered_map<int, double>& load) {
  double total = 0.0;
  for (const auto& kv : load) {
    total += kv.second;  // EXPECT-ANALYZER(unordered-accum)
  }
  return total;
}

// The output vector's order IS the hash order.
void collect(const std::unordered_set<int>& ids, std::vector<int>& out) {
  for (int id : ids) {
    out.push_back(id);  // EXPECT-ANALYZER(unordered-accum)
  }
}

// Members outlive the iteration just like outer locals.
struct Stats {
  double mean = 0.0;
  void fold(const std::unordered_map<int, double>& m) {
    for (const auto& kv : m)
      mean += kv.second;  // EXPECT-ANALYZER(unordered-accum)
  }
};

// One level of helpers is scanned: the accumulation happens through a
// by-reference parameter inside bump(), flagged at the call site.
inline void bump(double& acc, double x) { acc += x; }

double helper_sum(const std::unordered_map<int, double>& m) {
  double acc = 0.0;
  for (const auto& kv : m)
    bump(acc, kv.second);  // EXPECT-ANALYZER(unordered-accum)
  return acc;
}

}  // namespace fixture

// Fixture: patterns analyzer-unordered-accum must NOT flag — the false-
// positive policy in docs/static-analysis.md, spelled out as code.
#include "cloudlb_mock.h"

namespace fixture {

// Integer accumulation commutes exactly: hash order cannot change it.
int count_entries(const std::unordered_map<int, double>& m) {
  int n = 0;
  for (const auto& kv : m) {
    if (kv.second > 0.0) n += 1;
  }
  return n;
}

// Ordered containers iterate deterministically; only unordered_* ranges
// are in scope.
double sum_ordered(const std::map<int, double>& m) {
  double total = 0.0;
  for (const auto& kv : m) total += kv.second;
  return total;
}

// An accumulator declared inside the body resets every iteration, so
// iteration order cannot leak through it; and max() is order-
// independent, written with a plain (non-compound) assignment.
double largest_magnitude(const std::unordered_map<int, double>& m) {
  double best = 0.0;
  for (const auto& kv : m) {
    double magnitude = 0.0;
    magnitude += kv.second > 0.0 ? kv.second : -kv.second;
    if (best < magnitude) best = magnitude;
  }
  return best;
}

}  // namespace fixture

// Fixture: discards analyzer-discarded-status must accept — consumed
// results, conditions, and the blessed explicit static_cast<void>.
#include "cloudlb_mock.h"

namespace fixture {

void react();

// The blessed way to say "I mean to drop this".
void blessed_discard(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  static_cast<void>(sim.cancel(h));
}

// Stored and acted on.
void consumed(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  const bool was_pending = sim.cancel(h);
  if (was_pending) react();
}

// Used directly as a condition.
void in_condition(cloudlb::Simulator& sim, cloudlb::EventHandle h) {
  if (sim.cancel(h)) react();
  while (sim.step()) react();
}

// A void-returning call in statement position is not a status drop.
void void_call(cloudlb::Simulator& sim) { sim.run(); }

}  // namespace fixture

// Fixture: analyzer-float-merge must fire when a loop folds floating
// state over per-shard data outside a CLB_CANONICAL_COMBINE helper —
// float addition is not associative, so the fold order must be pinned.
#include "cloudlb_mock.h"

namespace fixture {

struct CLB_SHARD_CONFINED ShardSegment {
  double cpu_seconds = 0.0;
  int tasks_executed = 0;
};

class Partition {
 public:
  int shards() const { return 4; }
  CLB_CANONICAL_COMBINE double combined_cpu() const;
  ShardSegment segs[4];
};

// The canonical bug: a barrier-phase fold over confined state that
// never went through a combiner.
CLB_BARRIER_PHASE double naive_total(const Partition& part) {
  double total = 0.0;
  for (int s = 0; s < part.shards(); ++s) {
    total += part.segs[s].cpu_seconds;  // EXPECT-ANALYZER(float-merge)
  }
  return total;
}

// Folding through a visible helper hides nothing.
CLB_BARRIER_PHASE void accumulate_into(double& into,
                                       const ShardSegment& seg) {
  into += seg.cpu_seconds;
}

CLB_BARRIER_PHASE double helper_total(const Partition& part) {
  double total = 0.0;
  for (const ShardSegment& seg : part.segs) {
    accumulate_into(total, seg);  // EXPECT-ANALYZER(float-merge)
  }
  return total;
}

// Re-folding combiner results per partition still floats the order of
// the outer sum.
CLB_BARRIER_PHASE double refold(const Partition* parts, int n) {
  double grand = 0.0;
  for (int i = 0; i < n; ++i) {
    grand += parts[i].combined_cpu();  // EXPECT-ANALYZER(float-merge)
  }
  return grand;
}

}  // namespace fixture

// Hermetic stand-ins for the std and cloudlb types the analyzer's checks
// key on. Fixtures compile with `-nostdinc` against this header alone,
// so the selftest runs on any machine that can build cloudlb-analyzer —
// no system headers, no clang resource directory.
//
// Only names and shapes matter: the checks match on qualified names
// (std::unordered_map, std::random_device, cloudlb::SimTime, ...) and
// types, never on behavior, so functions stay undefined except where a
// template must instantiate over a fixture-local lambda type.
#pragma once

typedef decltype(sizeof(0)) cloudlb_mock_size_t;

// The shard-safety effect annotations (src/util/shard_annotations.h).
// The analyzer always parses as clang, so the attribute is spelled
// directly — no compiler gate needed in the hermetic mock.
#define CLB_SHARD_ANNOTATE(text) __attribute__((annotate(text)))
#define CLB_SHARD_CONFINED CLB_SHARD_ANNOTATE("clb::shard_confined")
#define CLB_BARRIER_PHASE CLB_SHARD_ANNOTATE("clb::barrier_phase")
#define CLB_CANONICAL_COMBINE CLB_SHARD_ANNOTATE("clb::canonical_combine")
#define CLB_RANKED_FANOUT CLB_SHARD_ANNOTATE("clb::ranked_fanout")
#define CLB_WARM_PATH CLB_SHARD_ANNOTATE("clb::warm_path")

namespace std {

template <class T>
struct vector {
  void push_back(const T&);
  void emplace_back(const T&);
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
};

template <class A, class B>
struct pair {
  A first;
  B second;
};

template <class K, class V>
struct unordered_map {
  using value_type = pair<const K, V>;
  value_type* begin();
  value_type* end();
  const value_type* begin() const;
  const value_type* end() const;
};

template <class K>
struct unordered_set {
  const K* begin() const;
  const K* end() const;
};

template <class K, class V>
struct map {
  using value_type = pair<const K, V>;
  const value_type* begin() const;
  const value_type* end() const;
};

struct random_device {
  unsigned operator()();
};

namespace chrono {
struct steady_clock {
  struct time_point {};
  static time_point now();
};
struct system_clock {
  struct time_point {};
  static time_point now();
};
}  // namespace chrono

}  // namespace std

extern "C" {
long time(long*);
int rand(void);
void srand(unsigned);
int clock_gettime(int, void*);
}

namespace cloudlb {

class SimTime {
 public:
  static SimTime nanos(long long);
  static SimTime millis(long long);
  static SimTime from_seconds(double);
  static SimTime zero();
  long long ns() const;
  double to_seconds() const;
  friend SimTime operator*(SimTime, double);
  friend SimTime operator*(double, SimTime);
  friend SimTime operator/(SimTime, long long);
  friend bool operator==(SimTime, SimTime);
  friend bool operator<(SimTime, SimTime);
};

struct EventHandle {
  int slot = -1;
  unsigned gen = 0;
  bool valid() const;
};

class Simulator {
 public:
  // The templates need inline bodies: fixtures instantiate them with
  // local lambda types, and a specialization over a local type can never
  // be defined in another TU (GCC rejects the bodiless form outright).
  template <class F>
  EventHandle schedule_after(SimTime, F) {
    return EventHandle{};
  }
  template <class F>
  EventHandle schedule_at(SimTime, F) {
    return EventHandle{};
  }
  [[nodiscard]] bool cancel(EventHandle);
  [[nodiscard]] bool step();
  SimTime now() const;
  void run();
};

struct ShardEventHandle {
  bool valid() const;
  int shard() const;
};

class ShardedSimulator {
 public:
  template <class F>
  ShardEventHandle schedule_after(int, SimTime, F) {
    return ShardEventHandle{};
  }
  template <class F>
  ShardEventHandle schedule_at(int, SimTime, F) {
    return ShardEventHandle{};
  }
  [[nodiscard]] bool cancel(const ShardEventHandle&);
  SimTime now() const;
  void run();
};

class EngineCore {
 public:
  template <class F>
  EventHandle schedule_at(SimTime, F) {
    return EventHandle{};
  }
  template <class F>
  EventHandle schedule_after(SimTime, F) {
    return EventHandle{};
  }
  template <class F>
  EventHandle schedule_at_ranked(SimTime, SimTime, unsigned long long, F) {
    return EventHandle{};
  }
  template <class F>
  EventHandle schedule_at_stamped(SimTime, SimTime, F) {
    return EventHandle{};
  }
  [[nodiscard]] bool cancel(EventHandle);
  void set_current_rank(unsigned long long);
  SimTime now() const;
};

class ShardedRuntimeHost {
 public:
  EngineCore& engine_of_shard(int);
  EngineCore& engine_of_pe(int);
  EngineCore& engine_of_node(int);
  EngineCore& engine_of_core(int);
  bool in_window() const;
};

class WorkerTeam {
 public:
  explicit WorkerTeam(int);
  int workers() const;
  template <class F>
  CLB_SHARD_CONFINED void run_round(F fn) {
    fn(0);
  }
};

struct FaultPlan {
  [[nodiscard]] static FaultPlan parse(const char*);
};

[[nodiscard]] bool attempt_migration(int chare);
[[nodiscard]] bool retry_or_abandon(int chare);

}  // namespace cloudlb

#include "shared.h"

namespace fixture {

void fold_tasks(ShardTotals& totals) {
  totals.tasks += 1;  // EXPECT-ANALYZER(shard-confined)
}

}  // namespace fixture

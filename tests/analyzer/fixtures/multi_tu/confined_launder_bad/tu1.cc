#include "shared.h"

namespace fixture {

// Coordinator-side entry point with no shard-context annotation: the
// confined touch three calls and two TUs away is laundered through it.
void start_report(ShardTotals& totals) { relay_report(totals); }

}  // namespace fixture

#include "shared.h"

namespace fixture {

// Innocent-looking pass-through: per-TU analysis of this file alone
// sees neither the unannotated root nor the confined touch.
void relay_report(ShardTotals& totals) { fold_tasks(totals); }

}  // namespace fixture

// Multi-TU fixture (bad twin): depth-3 cross-TU confined-state
// laundering. start_report (tu1) is an UNANNOTATED entry point; the
// chain start_report -> relay_report -> fold_tasks crosses three
// translation units before touching CLB_SHARD_CONFINED state in tu3.
// No single-TU pass can see past the first hop — only the link step's
// whole-program closure proves no shard-context root reaches the touch.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

struct CLB_SHARD_CONFINED ShardTotals {
  int tasks = 0;
  long long busy_ns = 0;
};

void start_report(ShardTotals& totals);  // tu1: unannotated root
void relay_report(ShardTotals& totals);  // tu2: pass-through helper
void fold_tasks(ShardTotals& totals);    // tu3: touches confined state

}  // namespace fixture

#include "shared.h"

namespace fixture {

CLB_WARM_PATH void fire_fast(int n) { stage(n); }

}  // namespace fixture

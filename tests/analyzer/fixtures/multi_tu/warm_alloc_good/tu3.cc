#include "shared.h"

namespace fixture {

// Pool-backed: the warm path hands out slots from static storage, the
// pattern the slot arena uses in the real engine.
int* make_buffer(int n) {
  static int pool[64];
  return n < 64 ? &pool[n] : &pool[0];
}

}  // namespace fixture

#include "shared.h"

namespace fixture {

void stage(int n) { (void)make_buffer(n); }

}  // namespace fixture

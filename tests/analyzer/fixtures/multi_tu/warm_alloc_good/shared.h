// Multi-TU fixture (good twin of warm_alloc): the same warm chain, but
// the tu3 helper serves requests from a preallocated pool — nothing on
// the transitive warm path allocates, so the link must stay silent.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

CLB_WARM_PATH void fire_fast(int n);  // tu1
void stage(int n);                    // tu2
int* make_buffer(int n);              // tu3: pool-backed, no allocation

}  // namespace fixture

// Multi-TU fixture (good twin of confined_launder): the same depth-3
// cross-TU chain, but the tu1 entry point carries CLB_SHARD_CONFINED —
// the whole-program closure blesses every function it reaches, so the
// confined touch in tu3 is licensed and the link must stay silent.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

struct CLB_SHARD_CONFINED ShardTotals {
  int tasks = 0;
  long long busy_ns = 0;
};

CLB_SHARD_CONFINED void start_report(ShardTotals& totals);  // tu1: rooted
void relay_report(ShardTotals& totals);                     // tu2
void fold_tasks(ShardTotals& totals);                       // tu3

}  // namespace fixture

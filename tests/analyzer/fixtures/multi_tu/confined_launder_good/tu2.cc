#include "shared.h"

namespace fixture {

void relay_report(ShardTotals& totals) { fold_tasks(totals); }

}  // namespace fixture

#include "shared.h"

namespace fixture {

// Shard-context root: the annotation here licenses the touch two TUs
// away, through the link step's transitive closure.
CLB_SHARD_CONFINED void start_report(ShardTotals& totals) {
  relay_report(totals);
}

}  // namespace fixture

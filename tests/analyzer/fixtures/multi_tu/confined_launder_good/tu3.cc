#include "shared.h"

namespace fixture {

void fold_tasks(ShardTotals& totals) {
  totals.tasks += 1;  // blessed: reached from the annotated tu1 root
}

}  // namespace fixture

// Multi-TU fixture (bad twin): warm-path allocation via an out-of-line
// helper. fire_fast (tu1, CLB_WARM_PATH) -> stage (tu2) -> make_buffer
// (tu3), which heap-allocates. Warmth is transitive with no annotation
// stop, so the link step flags the allocation in tu3 with the full
// fire_fast -> stage -> make_buffer chain.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

CLB_WARM_PATH void fire_fast(int n);  // tu1: steady-state hot entry
void stage(int n);                    // tu2: out-of-line helper
int* make_buffer(int n);              // tu3: allocates

}  // namespace fixture

#include "shared.h"

namespace fixture {

// Per-TU analysis of this helper alone sees neither the warm root nor
// the allocation it reaches.
void stage(int n) { (void)make_buffer(n); }

}  // namespace fixture

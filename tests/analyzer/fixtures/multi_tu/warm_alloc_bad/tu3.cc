#include "shared.h"

namespace fixture {

int* make_buffer(int n) {
  return new int[static_cast<unsigned long>(n)];  // EXPECT-ANALYZER(warm-path)
}

}  // namespace fixture

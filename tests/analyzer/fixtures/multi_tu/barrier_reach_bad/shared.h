// Multi-TU fixture (bad twin): cross-TU barrier-phase reachability.
// window_tick (tu1, CLB_SHARD_CONFINED) delegates to relay (tu2,
// unannotated), which calls the CLB_BARRIER_PHASE merge_totals (tu3)
// with no in_window() guard anywhere on the chain. The per-TU check
// sees only direct calls; the link step propagates confined context
// through relay and anchors the finding at relay's call site.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

CLB_BARRIER_PHASE void merge_totals();                      // tu3
void relay(cloudlb::ShardedRuntimeHost& host);              // tu2
CLB_SHARD_CONFINED void window_tick(
    cloudlb::ShardedRuntimeHost& host);                     // tu1

}  // namespace fixture

#include "shared.h"

namespace fixture {

// Shard-window handler: confined execution context starts here and
// flows into relay unguarded.
CLB_SHARD_CONFINED void window_tick(cloudlb::ShardedRuntimeHost& host) {
  relay(host);
}

}  // namespace fixture

#include "shared.h"

namespace fixture {

// The laundering hop: unannotated, so confined context flows through,
// and the barrier-phase call below has no in_window() guard.
void relay(cloudlb::ShardedRuntimeHost& host) {
  (void)host;
  merge_totals();  // EXPECT-ANALYZER(barrier-phase)
}

}  // namespace fixture

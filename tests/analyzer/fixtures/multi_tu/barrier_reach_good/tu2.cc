#include "shared.h"

namespace fixture {

// Guarded hop: the window-regime probe licenses the barrier entry even
// though the confined context originated a TU away.
void relay(cloudlb::ShardedRuntimeHost& host) {
  if (!host.in_window()) {
    merge_totals();  // legitimately outside the window regime
  }
}

}  // namespace fixture

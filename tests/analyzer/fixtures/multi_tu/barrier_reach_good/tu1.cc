#include "shared.h"

namespace fixture {

CLB_SHARD_CONFINED void window_tick(cloudlb::ShardedRuntimeHost& host) {
  relay(host);
}

}  // namespace fixture

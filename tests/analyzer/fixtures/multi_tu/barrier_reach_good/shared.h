// Multi-TU fixture (good twin of barrier_reach): the same cross-TU
// chain, but relay checks in_window() before entering the barrier
// phase. A guard at ANY hop of the whole-program chain clears the
// finding — the link step must stay silent.
#pragma once
#include "cloudlb_mock.h"

namespace fixture {

CLB_BARRIER_PHASE void merge_totals();                      // tu3
void relay(cloudlb::ShardedRuntimeHost& host);              // tu2
CLB_SHARD_CONFINED void window_tick(
    cloudlb::ShardedRuntimeHost& host);                     // tu1

}  // namespace fixture

#include "shared.h"

namespace fixture {

CLB_BARRIER_PHASE void merge_totals() {}

}  // namespace fixture

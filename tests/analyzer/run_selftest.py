#!/usr/bin/env python3
"""Selftest for cloudlb-analyzer against the annotated fixture corpus.

Every fixture under fixtures/src/ declares its expected findings inline:

    total += kv.second;  // EXPECT-ANALYZER(unordered-accum)

The analyzer is run over each fixture (hermetically: -nostdinc plus the
mock header, so no system headers or clang resource dir are needed) and
the reported (line, check) pairs must match the annotations exactly —
a missing finding, an extra finding, or a finding on the wrong line all
fail. Files without annotations (the *_good.cc corpus, including the
NOLINT-CLOUDLB suppression fixture) must come back empty.

Exit codes: 0 all fixtures behave, 1 mismatch, 2 harness error, 77
skipped (analyzer binary not built).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*EXPECT-ANALYZER\(([a-z0-9-]+(?:,[a-z0-9-]+)*)\)")
FINDING_RE = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): warning: .+ "
    r"\[analyzer-(?P<check>[a-z0-9-]+)\]$")


def expected_findings(fixture: pathlib.Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if match is None:
            continue
        for check in match.group(1).split(","):
            expected.add((lineno, check.strip()))
    return expected


def run_analyzer(binary: pathlib.Path, fixture: pathlib.Path,
                 include_dir: pathlib.Path) -> tuple[int, str, str]:
    proc = subprocess.run(
        [str(binary), str(fixture), "--",
         "-xc++", "-std=c++17", "-nostdinc", f"-I{include_dir}"],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="",
                        help="path to cloudlb-analyzer (empty => skip)")
    parser.add_argument("--fixtures", required=True,
                        help="fixture root (holds src/ and include/)")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary) if args.binary else None
    if binary is None or not binary.exists():
        print("analyzer selftest: cloudlb-analyzer not built (configure "
              "with -DCLOUDLB_ANALYZER=ON and LLVM dev libraries); "
              "skipping", file=sys.stderr)
        return 77

    fixtures_root = pathlib.Path(args.fixtures)
    include_dir = fixtures_root / "include"
    fixtures = sorted((fixtures_root / "src").glob("*.cc"))
    if not fixtures or not include_dir.is_dir():
        print(f"analyzer selftest: no fixtures under {fixtures_root}",
              file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        expected = expected_findings(fixture)
        code, out, err = run_analyzer(binary, fixture, include_dir)
        if code == 2:
            print(f"{fixture.name}: analyzer reported a tool error:\n{err}",
                  file=sys.stderr)
            failures += 1
            continue
        actual: set[tuple[int, str]] = set()
        for line in out.splitlines():
            match = FINDING_RE.match(line)
            if match is None:
                print(f"{fixture.name}: unparseable output line: {line!r}",
                      file=sys.stderr)
                failures += 1
                continue
            if pathlib.Path(match.group("file")).name != fixture.name:
                print(f"{fixture.name}: stray finding outside the fixture: "
                      f"{line!r}", file=sys.stderr)
                failures += 1
                continue
            actual.add((int(match.group("line")), match.group("check")))
        if (code != 0) != bool(actual):
            print(f"{fixture.name}: exit code {code} disagrees with "
                  f"{len(actual)} parsed findings", file=sys.stderr)
            failures += 1
        for line_no, check in sorted(expected - actual):
            print(f"{fixture.name}:{line_no}: expected analyzer-{check} "
                  "but the analyzer stayed silent", file=sys.stderr)
            failures += 1
        for line_no, check in sorted(actual - expected):
            print(f"{fixture.name}:{line_no}: unexpected analyzer-{check} "
                  "(no EXPECT-ANALYZER annotation)", file=sys.stderr)
            failures += 1

    print(f"analyzer selftest: {len(fixtures)} fixtures, "
          f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Selftest for cloudlb-analyzer against the annotated fixture corpus.

Every fixture under fixtures/src/ declares its expected findings inline:

    total += kv.second;  // EXPECT-ANALYZER(unordered-accum)

The analyzer is run over each fixture (hermetically: -nostdinc plus the
mock header, so no system headers or clang resource dir are needed) and
the reported (line, check) pairs must match the annotations exactly —
a missing finding, an extra finding, or a finding on the wrong line all
fail. Files without annotations (the *_good.cc corpus, including the
NOLINT-CLOUDLB suppression fixture) must come back empty.

Multi-TU cases under fixtures/multi_tu/<case>/ exercise the
whole-program pipeline instead: every tu*.cc in the case is run through
`--emit-summary` into a scratch dir, a second emit proves the content
cache re-parses zero TUs, and `--link` findings are matched (file, line,
check) two-way against the case's EXPECT-ANALYZER annotations — bad
twins must fire exactly where annotated, good twins must stay silent.

`--case <name>` runs one multi-TU case end-to-end and exits with the
link verdict (1 when findings fired as annotated, 0 otherwise), which is
what the ctest WILL_FAIL wiring for the *_bad families drives.

Exit codes: 0 all fixtures behave, 1 mismatch, 2 harness error, 77
skipped (analyzer binary not built).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

EXPECT_RE = re.compile(r"//\s*EXPECT-ANALYZER\(([a-z0-9-]+(?:,[a-z0-9-]+)*)\)")
FINDING_RE = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):(?P<col>\d+): warning: .+ "
    r"\[analyzer-(?P<check>[a-z0-9-]+)\]$")


def expected_findings(fixture: pathlib.Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if match is None:
            continue
        for check in match.group(1).split(","):
            expected.add((lineno, check.strip()))
    return expected


def run_analyzer(binary: pathlib.Path, fixture: pathlib.Path,
                 include_dir: pathlib.Path) -> tuple[int, str, str]:
    proc = subprocess.run(
        [str(binary), str(fixture), "--",
         "-xc++", "-std=c++17", "-nostdinc", f"-I{include_dir}"],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def hermetic_flags(include_dir: pathlib.Path) -> list[str]:
    return ["-xc++", "-std=c++17", "-nostdinc", f"-I{include_dir}"]


def parse_findings(out: str) -> set[tuple[str, int, str]]:
    """(file basename, line, check) triples from analyzer/link output."""
    findings: set[tuple[str, int, str]] = set()
    for line in out.splitlines():
        match = FINDING_RE.match(line)
        if match is not None:
            findings.add((pathlib.Path(match.group("file")).name,
                          int(match.group("line")), match.group("check")))
    return findings


def run_multi_tu_case(binary: pathlib.Path, case_dir: pathlib.Path,
                      include_dir: pathlib.Path) -> tuple[int, list[str]]:
    """Emits, re-emits (cache check) and links one multi-TU case.

    Returns (link exit code, list of mismatch messages). Any tool error
    surfaces as a mismatch message with exit code 2.
    """
    sources = sorted(case_dir.glob("tu*.cc"))
    problems: list[str] = []
    if len(sources) < 3:
        return 2, [f"{case_dir.name}: expected >= 3 TUs, found "
                   f"{len(sources)}"]
    expected: set[tuple[str, int, str]] = set()
    for source in sources:
        for line_no, check in expected_findings(source):
            expected.add((source.name, line_no, check))

    with tempfile.TemporaryDirectory(prefix="cloudlb_summaries_") as tmp:
        emit_cmd = [str(binary), f"--emit-summary={tmp}",
                    *[str(s) for s in sources], "--",
                    *hermetic_flags(include_dir)]
        cold = subprocess.run(emit_cmd, capture_output=True, text=True)
        if cold.returncode != 0:
            return 2, [f"{case_dir.name}: --emit-summary failed:\n"
                       f"{cold.stderr}"]
        warm = subprocess.run(emit_cmd, capture_output=True, text=True)
        if warm.returncode != 0:
            return 2, [f"{case_dir.name}: warm --emit-summary failed:\n"
                       f"{warm.stderr}"]
        if f"re-parsed 0/{len(sources)}" not in warm.stdout:
            problems.append(
                f"{case_dir.name}: warm emit re-parsed TUs despite "
                f"unchanged sources: {warm.stdout.strip()!r}")

        link = subprocess.run([str(binary), f"--link={tmp}"],
                              capture_output=True, text=True)
        if link.returncode == 2:
            return 2, [f"{case_dir.name}: --link reported a tool error:\n"
                       f"{link.stderr}"]
        actual = parse_findings(link.stdout)
        for name, line_no, check in sorted(expected - actual):
            problems.append(f"{case_dir.name}/{name}:{line_no}: expected "
                            f"analyzer-{check} but the link stayed silent")
        for name, line_no, check in sorted(actual - expected):
            problems.append(f"{case_dir.name}/{name}:{line_no}: unexpected "
                            f"analyzer-{check} (no EXPECT-ANALYZER "
                            "annotation)")
        if (link.returncode != 0) != bool(actual):
            problems.append(f"{case_dir.name}: link exit {link.returncode} "
                            f"disagrees with {len(actual)} findings")
        return link.returncode, problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="",
                        help="path to cloudlb-analyzer (empty => skip)")
    parser.add_argument("--fixtures", required=True,
                        help="fixture root (holds src/ and include/)")
    parser.add_argument("--case", default="",
                        help="run one multi_tu/<case> end-to-end and exit "
                             "with the link verdict (for WILL_FAIL wiring)")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary) if args.binary else None
    if binary is None or not binary.exists():
        print("analyzer selftest: cloudlb-analyzer not built (configure "
              "with -DCLOUDLB_ANALYZER=ON and LLVM dev libraries); "
              "skipping", file=sys.stderr)
        return 77

    fixtures_root = pathlib.Path(args.fixtures)
    include_dir = fixtures_root / "include"
    multi_tu_root = fixtures_root / "multi_tu"

    if args.case:
        case_dir = multi_tu_root / args.case
        if not case_dir.is_dir():
            print(f"analyzer selftest: no such multi-TU case {case_dir}",
                  file=sys.stderr)
            return 2
        code, problems = run_multi_tu_case(binary, case_dir, include_dir)
        for problem in problems:
            print(problem, file=sys.stderr)
        # Any tool error or expectation mismatch exits 0 so a WILL_FAIL
        # test (which passes only on nonzero) surfaces it as a failure;
        # a clean run propagates the link verdict (1 iff findings fired).
        return 0 if problems else code

    fixtures = sorted((fixtures_root / "src").glob("*.cc"))
    if not fixtures or not include_dir.is_dir():
        print(f"analyzer selftest: no fixtures under {fixtures_root}",
              file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        expected = expected_findings(fixture)
        code, out, err = run_analyzer(binary, fixture, include_dir)
        if code == 2:
            print(f"{fixture.name}: analyzer reported a tool error:\n{err}",
                  file=sys.stderr)
            failures += 1
            continue
        actual: set[tuple[int, str]] = set()
        for line in out.splitlines():
            match = FINDING_RE.match(line)
            if match is None:
                print(f"{fixture.name}: unparseable output line: {line!r}",
                      file=sys.stderr)
                failures += 1
                continue
            if pathlib.Path(match.group("file")).name != fixture.name:
                print(f"{fixture.name}: stray finding outside the fixture: "
                      f"{line!r}", file=sys.stderr)
                failures += 1
                continue
            actual.add((int(match.group("line")), match.group("check")))
        if (code != 0) != bool(actual):
            print(f"{fixture.name}: exit code {code} disagrees with "
                  f"{len(actual)} parsed findings", file=sys.stderr)
            failures += 1
        for line_no, check in sorted(expected - actual):
            print(f"{fixture.name}:{line_no}: expected analyzer-{check} "
                  "but the analyzer stayed silent", file=sys.stderr)
            failures += 1
        for line_no, check in sorted(actual - expected):
            print(f"{fixture.name}:{line_no}: unexpected analyzer-{check} "
                  "(no EXPECT-ANALYZER annotation)", file=sys.stderr)
            failures += 1

    multi_tu_cases = (sorted(d for d in multi_tu_root.iterdir()
                             if d.is_dir())
                      if multi_tu_root.is_dir() else [])
    for case_dir in multi_tu_cases:
        _, problems = run_multi_tu_case(binary, case_dir, include_dir)
        for problem in problems:
            print(problem, file=sys.stderr)
        failures += len(problems)

    print(f"analyzer selftest: {len(fixtures)} fixtures, "
          f"{len(multi_tu_cases)} multi-TU cases, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

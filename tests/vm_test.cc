#include <gtest/gtest.h>

#include "machine/machine.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/interferer.h"
#include "vm/tenant.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

constexpr double kTol = 1e-6;

class VmTest : public ::testing::Test {
 protected:
  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
};

TEST_F(VmTest, PinsVcpusToRequestedCores) {
  VirtualMachine vm{machine, "vm0", {1, 5, 6}};
  EXPECT_EQ(vm.num_vcpus(), 3);
  EXPECT_EQ(vm.core_of(0), 1);
  EXPECT_EQ(vm.core_of(1), 5);
  EXPECT_EQ(vm.core_of(2), 6);
  EXPECT_EQ(vm.name(), "vm0");
}

TEST_F(VmTest, VcpuBoundsChecked) {
  VirtualMachine vm{machine, "vm0", {0}};
  EXPECT_THROW(vm.core_of(1), CheckFailure);
  EXPECT_THROW(vm.core_of(-1), CheckFailure);
  EXPECT_THROW(VirtualMachine(machine, "bad", {}), CheckFailure);
}

TEST_F(VmTest, DemandRunsOnBackingCore) {
  VirtualMachine vm{machine, "vm0", {2}};
  SimTime done;
  vm.demand(0, SimTime::seconds(1), [&] { done = sim.now(); });
  EXPECT_TRUE(vm.has_demand(0));
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 1.0, kTol);
  EXPECT_NEAR(vm.vcpu_cpu_time(0).to_seconds(), 1.0, kTol);
  EXPECT_NEAR(machine.core(2).proc_stat().busy.to_seconds(), 1.0, kTol);
}

TEST_F(VmTest, CoLocatedVmsContend) {
  // The central multi-tenancy effect: two VMs pinned to the same core run
  // at half speed each.
  VirtualMachine a{machine, "a", {0}};
  VirtualMachine b{machine, "b", {0}};
  SimTime done_a, done_b;
  a.demand(0, SimTime::seconds(1), [&] { done_a = sim.now(); });
  b.demand(0, SimTime::seconds(1), [&] { done_b = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_a.to_seconds(), 2.0, kTol);
  EXPECT_NEAR(done_b.to_seconds(), 2.0, kTol);
}

TEST_F(VmTest, WeightGivesPreferentialShare) {
  VirtualMachine app{machine, "app", {0}, 1.0};
  VirtualMachine bg{machine, "bg", {0}, 4.0};
  SimTime done_bg;
  app.demand(0, SimTime::seconds(10), [] {});
  bg.demand(0, SimTime::seconds(1), [&] { done_bg = sim.now(); });
  sim.run();
  // BG at 4/5 rate → 1.25 s.
  EXPECT_NEAR(done_bg.to_seconds(), 1.25, kTol);
}

TEST_F(VmTest, SetWeightAppliesToAllVcpus) {
  VirtualMachine app{machine, "app", {0, 1}, 1.0};
  VirtualMachine bg{machine, "bg", {0, 1}, 1.0};
  bg.set_weight(3.0);
  SimTime done0, done1;
  app.demand(0, SimTime::seconds(10), [] {});
  app.demand(1, SimTime::seconds(10), [] {});
  bg.demand(0, SimTime::seconds(3), [&] { done0 = sim.now(); });
  bg.demand(1, SimTime::seconds(3), [&] { done1 = sim.now(); });
  sim.run();
  EXPECT_NEAR(done0.to_seconds(), 4.0, kTol);  // rate 3/4
  EXPECT_NEAR(done1.to_seconds(), 4.0, kTol);
}

TEST_F(VmTest, HostProcStatReflectsWholeCore) {
  VirtualMachine a{machine, "a", {3}};
  VirtualMachine b{machine, "b", {3}};
  a.demand(0, SimTime::seconds(1), [] {});
  b.demand(0, SimTime::seconds(1), [] {});
  sim.run();
  // Both VMs see the same host core counters: 2 s busy, 0 idle.
  EXPECT_NEAR(a.host_proc_stat(0).busy.to_seconds(), 2.0, kTol);
  EXPECT_NEAR(b.host_proc_stat(0).idle.to_seconds(), 0.0, kTol);
}

// ------------------------------------------------------- SyntheticInterferer

TEST_F(VmTest, InterfererSaturatesItsCore) {
  SyntheticInterferer hog{sim, machine, {0}};
  hog.start();
  sim.run_until(SimTime::seconds(2));
  hog.stop();
  sim.run();
  EXPECT_NEAR(hog.cpu_consumed().to_seconds(), 2.0, 0.02);
  EXPECT_NEAR(machine.core(0).proc_stat().busy.to_seconds(), 2.0, 0.02);
}

TEST_F(VmTest, InterfererHonorsDutyCycle) {
  SyntheticInterferer::Config config;
  config.duty_cycle = 0.25;
  config.chunk = SimTime::millis(20);
  SyntheticInterferer hog{sim, machine, {1}, config};
  hog.start();
  sim.run_until(SimTime::seconds(4));
  hog.stop();
  sim.run();
  EXPECT_NEAR(hog.cpu_consumed().to_seconds(), 1.0, 0.05);
}

TEST_F(VmTest, InterfererStopsAndRestarts) {
  SyntheticInterferer hog{sim, machine, {0}};
  hog.start();
  sim.run_until(SimTime::seconds(1));
  hog.stop();
  sim.run_until(SimTime::seconds(3));
  const double after_stop = hog.cpu_consumed().to_seconds();
  EXPECT_NEAR(after_stop, 1.0, 0.02);
  hog.start();
  sim.run_until(SimTime::seconds(4));
  hog.stop();
  sim.run();
  EXPECT_NEAR(hog.cpu_consumed().to_seconds(), after_stop + 1.0, 0.04);
}

TEST_F(VmTest, InterfererRestartWhileChunkInFlightDoesNotDoubleDemand) {
  SyntheticInterferer hog{sim, machine, {0}};
  hog.start();
  sim.run_until(SimTime::millis(5));  // mid-chunk
  hog.stop();
  EXPECT_NO_THROW(hog.start());  // would throw on a double demand
  sim.run_until(SimTime::seconds(1));
  hog.stop();
  sim.run();
  EXPECT_NEAR(hog.cpu_consumed().to_seconds(), 1.0, 0.02);
}

TEST_F(VmTest, MultiCoreInterferer) {
  SyntheticInterferer hog{sim, machine, {0, 1, 2}};
  hog.start();
  sim.run_until(SimTime::seconds(1));
  hog.stop();
  sim.run();
  EXPECT_NEAR(hog.cpu_consumed().to_seconds(), 3.0, 0.05);
}

TEST_F(VmTest, InterfererConfigValidated) {
  SyntheticInterferer::Config bad;
  bad.duty_cycle = 0.0;
  EXPECT_THROW(SyntheticInterferer(sim, machine, {0}, bad), CheckFailure);
  bad.duty_cycle = 1.5;
  EXPECT_THROW(SyntheticInterferer(sim, machine, {0}, bad), CheckFailure);
}

TEST_F(VmTest, InterfererSlowsCoLocatedVm) {
  SyntheticInterferer hog{sim, machine, {0}};
  VirtualMachine app{machine, "app", {0}};
  hog.start();
  SimTime done;
  app.demand(0, SimTime::seconds(1), [&] { done = sim.now(); });
  sim.run_until(SimTime::seconds(5));
  hog.stop();
  sim.run();
  EXPECT_NEAR(done.to_seconds(), 2.0, 0.05);  // halved by the hog
}

// ------------------------------------------------------------- TenantField

TEST_F(VmTest, TenantFieldDeterministicPlacement) {
  TenantFieldConfig config;
  config.num_tenants = 5;
  config.seed = 123;
  TenantField a{sim, machine, config};
  TenantField b{sim, machine, config};
  for (int t = 0; t < 5; ++t)
    EXPECT_EQ(a.core_of_tenant(t), b.core_of_tenant(t));
}

TEST_F(VmTest, TenantFieldCyclesOnAndOff) {
  TenantFieldConfig config;
  config.num_tenants = 6;
  config.mean_on_seconds = 0.5;
  config.mean_off_seconds = 0.5;
  TenantField field{sim, machine, config};
  EXPECT_EQ(field.active_tenants(), 0);
  field.start();
  // Sample activity over time: should neither stay all-on nor all-off.
  int ever_active = 0, ever_idle = 0;
  for (int s = 1; s <= 40; ++s) {
    sim.run_until(SimTime::from_seconds(0.25 * s));
    const int active = field.active_tenants();
    if (active > 0) ++ever_active;
    if (active < 6) ++ever_idle;
  }
  field.stop();
  sim.run();
  EXPECT_GT(ever_active, 10);
  EXPECT_GT(ever_idle, 10);
  // With ~50% duty over 10 s x 6 tenants, consumption is substantial but
  // clearly below saturation.
  const double cpu = field.cpu_consumed().to_seconds();
  EXPECT_GT(cpu, 10.0);
  EXPECT_LT(cpu, 55.0);
}

TEST_F(VmTest, TenantFieldConsumptionDeterministic) {
  auto consumed = [&](std::uint64_t seed) {
    Simulator local_sim;
    Machine local_machine{local_sim,
                          MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
    TenantFieldConfig config;
    config.num_tenants = 4;
    config.seed = seed;
    TenantField field{local_sim, local_machine, config};
    field.start();
    local_sim.run_until(SimTime::seconds(5));
    field.stop();
    local_sim.run();
    return field.cpu_consumed().ns();
  };
  EXPECT_EQ(consumed(7), consumed(7));
  EXPECT_NE(consumed(7), consumed(8));
}

TEST_F(VmTest, TenantFieldStopPreventsNewEpisodes) {
  TenantFieldConfig config;
  config.num_tenants = 3;
  config.mean_on_seconds = 0.2;
  config.mean_off_seconds = 0.2;
  TenantField field{sim, machine, config};
  field.start();
  sim.run_until(SimTime::seconds(2));
  field.stop();
  sim.run();  // drains: no episode reschedules itself
  EXPECT_EQ(field.active_tenants(), 0);
  const double at_stop = field.cpu_consumed().to_seconds();
  EXPECT_DOUBLE_EQ(field.cpu_consumed().to_seconds(), at_stop);
}

TEST_F(VmTest, TenantFieldValidation) {
  TenantFieldConfig config;
  config.mean_on_seconds = 0.0;
  EXPECT_THROW(TenantField(sim, machine, config), CheckFailure);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/balancer_factory.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "runtime/ampi.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/interferer.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

using ampi::Rank;

struct AmpiRig {
  explicit AmpiRig(int cores, int lb_period = 0,
                   const std::string& balancer = "null")
      : machine(sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}) {
    std::vector<CoreId> ids(static_cast<std::size_t>(cores));
    std::iota(ids.begin(), ids.end(), 0);
    vm = std::make_unique<VirtualMachine>(machine, "ampi", ids);
    JobConfig config;
    config.name = "ampi";
    config.lb_period = lb_period;
    job = std::make_unique<RuntimeJob>(sim, *vm, config,
                                       make_balancer(balancer));
  }

  void run() {
    job->start();
    sim.run();
    ASSERT_TRUE(job->finished());
  }

  Simulator sim;
  Machine machine;
  std::unique_ptr<VirtualMachine> vm;
  std::unique_ptr<RuntimeJob> job;
};

TEST(AmpiTest, RingTokenAccumulates) {
  // Rank 0 injects a token; each rank adds its id and forwards; rank 0
  // checks the total after a full loop.
  AmpiRig rig{2};
  double final_token = -1.0;
  ampi::populate_ranks(*rig.job, 6, [&](Rank& self) {
    const int next = (self.rank() + 1) % self.world_size();
    const int prev =
        (self.rank() + self.world_size() - 1) % self.world_size();
    if (self.rank() == 0) {
      self.send(next, 7, {0.0});
      self.recv(prev, 7, [&](std::vector<double> token) {
        final_token = token[0];
        self.done();
      });
    } else {
      self.recv(prev, 7, [&, next](std::vector<double> token) {
        self.send(next, 7, {token[0] + self.rank()});
        self.done();
      });
    }
  });
  rig.run();
  EXPECT_DOUBLE_EQ(final_token, 1 + 2 + 3 + 4 + 5);
}

TEST(AmpiTest, UnexpectedMessagesAreQueued) {
  // The send lands before the matching recv is posted.
  AmpiRig rig{2};
  std::vector<double> got;
  ampi::populate_ranks(*rig.job, 2, [&](Rank& self) {
    if (self.rank() == 0) {
      self.send(1, 3, {1.0, 2.0, 3.0});
      self.done();
    } else {
      // Wait long enough that the message is surely buffered, then post.
      self.compute(SimTime::millis(50), [&self, &got] {
        self.recv(0, 3, [&](std::vector<double> data) {
          got = std::move(data);
          self.done();
        });
      });
    }
  });
  rig.run();
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(AmpiTest, RecvMatchesBySourceAndTag) {
  AmpiRig rig{3};
  std::vector<int> order;
  ampi::populate_ranks(*rig.job, 3, [&](Rank& self) {
    if (self.rank() == 0) {
      self.send(2, 5, {50.0});
      self.done();
    } else if (self.rank() == 1) {
      self.send(2, 9, {90.0});
      self.done();
    } else {
      // Post recvs in the opposite order of likely arrival; matching must
      // go by (src, tag), not arrival order.
      self.compute(SimTime::millis(20), [&self, &order] {
        self.recv(1, 9, [&self, &order](std::vector<double> d) {
          EXPECT_DOUBLE_EQ(d[0], 90.0);
          order.push_back(9);
          self.recv(0, 5, [&self, &order](std::vector<double> d2) {
            EXPECT_DOUBLE_EQ(d2[0], 50.0);
            order.push_back(5);
            self.done();
          });
        });
      });
    }
  });
  rig.run();
  EXPECT_EQ(order, (std::vector<int>{9, 5}));
}

TEST(AmpiTest, FifoPerSourceAndTag) {
  AmpiRig rig{2};
  std::vector<double> seen;
  ampi::populate_ranks(*rig.job, 2, [&](Rank& self) {
    if (self.rank() == 0) {
      for (int i = 0; i < 5; ++i) self.send(1, 1, {static_cast<double>(i)});
      self.done();
    } else {
      std::shared_ptr<std::function<void()>> loop =
          std::make_shared<std::function<void()>>();
      *loop = [&self, &seen, loop] {
        self.recv(0, 1, [&self, &seen, loop](std::vector<double> d) {
          seen.push_back(d[0]);
          if (seen.size() < 5) {
            (*loop)();
          } else {
            self.done();
          }
        });
      };
      (*loop)();
    }
  });
  rig.run();
  EXPECT_EQ(seen, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(AmpiTest, ComputeConsumesVirtualCpu) {
  AmpiRig rig{1};
  ampi::populate_ranks(*rig.job, 1, [&](Rank& self) {
    self.compute(SimTime::millis(250), [&self] {
      self.compute(SimTime::millis(250), [&self] { self.done(); });
    });
  });
  rig.run();
  EXPECT_NEAR(rig.job->elapsed().to_seconds(), 0.5, 0.01);
  EXPECT_NEAR(rig.job->cpu_consumed().to_seconds(), 0.5, 0.01);
}

TEST(AmpiTest, AllreduceSumsAcrossRanks) {
  AmpiRig rig{4};
  std::vector<double> results;
  ampi::populate_ranks(*rig.job, 8, [&](Rank& self) {
    self.allreduce_sum(self.rank() + 1.0, [&](double total) {
      results.push_back(total);
      self.done();
    });
  });
  rig.run();
  ASSERT_EQ(results.size(), 8u);
  for (const double r : results) EXPECT_DOUBLE_EQ(r, 36.0);  // Σ 1..8
}

TEST(AmpiTest, SequentialAllreducesKeepEpochsApart) {
  AmpiRig rig{2};
  int completed = 0;
  ampi::populate_ranks(*rig.job, 4, [&](Rank& self) {
    self.allreduce_sum(1.0, [&](double t1) {
      EXPECT_DOUBLE_EQ(t1, 4.0);
      self.allreduce_sum(2.0, [&](double t2) {
        EXPECT_DOUBLE_EQ(t2, 8.0);
        ++completed;
        self.done();
      });
    });
  });
  rig.run();
  EXPECT_EQ(completed, 4);
}

TEST(AmpiTest, BarrierHoldsFastRanks) {
  AmpiRig rig{4};
  SimTime slow_done, barrier_released;
  ampi::populate_ranks(*rig.job, 4, [&](Rank& self) {
    const SimTime work =
        self.rank() == 3 ? SimTime::millis(400) : SimTime::millis(10);
    self.compute(work, [&, work] {
      if (work == SimTime::millis(400)) slow_done = rig.sim.now();
      self.barrier([&] {
        if (self.rank() == 0) barrier_released = rig.sim.now();
        self.done();
      });
    });
  });
  rig.run();
  EXPECT_GE(barrier_released, slow_done);
  EXPECT_NEAR(barrier_released.to_seconds(), 0.4, 0.01);
}

TEST(AmpiTest, DoubleCollectiveRejected) {
  AmpiRig rig{1};
  ampi::populate_ranks(*rig.job, 1, [&](Rank& self) {
    self.allreduce_sum(1.0, [](double) {});
    EXPECT_THROW(self.allreduce_sum(2.0, [](double) {}), CheckFailure);
    self.done();
  });
  rig.job->start();
  rig.sim.run();
}

TEST(AmpiTest, RingStencilMatchesSerialReference) {
  // 1D periodic smoothing x_i' = (x_{i-1} + x_i + x_{i+1}) / 3, one value
  // per rank, 20 iterations — exercises the full send/recv choreography.
  constexpr int kRanks = 12;
  constexpr int kIters = 20;

  // Serial reference.
  std::vector<double> ref(kRanks);
  for (int i = 0; i < kRanks; ++i) ref[static_cast<std::size_t>(i)] = i * i;
  for (int it = 0; it < kIters; ++it) {
    std::vector<double> next(kRanks);
    for (int i = 0; i < kRanks; ++i) {
      const auto l = static_cast<std::size_t>((i + kRanks - 1) % kRanks);
      const auto r = static_cast<std::size_t>((i + 1) % kRanks);
      next[static_cast<std::size_t>(i)] =
          (ref[l] + ref[static_cast<std::size_t>(i)] + ref[r]) / 3.0;
    }
    ref.swap(next);
  }

  AmpiRig rig{4};
  std::vector<double> finals(kRanks, 0.0);
  ampi::populate_ranks(*rig.job, kRanks, [&](Rank& self) {
    struct State {
      double x;
      int iter = 0;
    };
    auto st = std::make_shared<State>();
    st->x = self.rank() * self.rank();
    const int left = (self.rank() + kRanks - 1) % kRanks;
    const int right = (self.rank() + 1) % kRanks;

    auto step = std::make_shared<std::function<void()>>();
    *step = [&self, st, left, right, step, &finals] {
      if (st->iter == kIters) {
        finals[static_cast<std::size_t>(self.rank())] = st->x;
        self.done();
        return;
      }
      // Tag by iteration parity so neighbours one step ahead don't mix.
      const int tag = st->iter % 2;
      self.send(left, tag, {st->x});
      self.send(right, tag, {st->x});
      self.recv(left, tag, [&self, st, right, tag, step](std::vector<double> lv) {
        self.recv(right, tag, [&self, st, lv, step](std::vector<double> rv) {
          self.compute(SimTime::micros(200), [st, lv, rv, step] {
            st->x = (lv[0] + st->x + rv[0]) / 3.0;
            ++st->iter;
            (*step)();
          });
        });
      });
    };
    (*step)();
  });
  rig.run();
  for (int i = 0; i < kRanks; ++i)
    EXPECT_DOUBLE_EQ(finals[static_cast<std::size_t>(i)],
                     ref[static_cast<std::size_t>(i)])
        << "rank " << i;
}

TEST(AmpiTest, SyncAllowsMigrationUnderInterference) {
  // Uneven ranks + a CPU hog on core 0; ranks sync every 4 iterations.
  auto run_with = [&](const std::string& balancer) {
    AmpiRig rig{4, 4, balancer};
    SyntheticInterferer hog{rig.sim, rig.machine, {0}};
    ampi::populate_ranks(*rig.job, 16, [&](Rank& self) {
      auto iter = std::make_shared<int>(0);
      auto step = std::make_shared<std::function<void()>>();
      *step = [&self, iter, step] {
        if (*iter == 24) {
          self.done();
          return;
        }
        self.compute(SimTime::millis(10), [&self, iter, step] {
          ++*iter;
          if (*iter % 4 == 0 && *iter < 24) {
            self.sync([step] { (*step)(); });
          } else {
            (*step)();
          }
        });
      };
      (*step)();
    });
    hog.start();
    rig.job->start();
    while (!rig.job->finished()) CLB_CHECK(rig.sim.step());
    hog.stop();
    rig.sim.run();
    return std::pair{rig.job->elapsed().to_seconds(),
                     rig.job->counters().migrations};
  };
  const auto [null_time, null_moves] = run_with("null");
  const auto [lb_time, lb_moves] = run_with("ia-refine");
  EXPECT_EQ(null_moves, 0);
  EXPECT_GT(lb_moves, 0);
  EXPECT_LT(lb_time, 0.85 * null_time);
}

TEST(AmpiTest, PopulateValidatesWorld) {
  AmpiRig rig{1};
  EXPECT_THROW(ampi::populate_ranks(*rig.job, 0, [](Rank&) {}),
               CheckFailure);
  EXPECT_THROW(Rank(5, 3, [](Rank&) {}), CheckFailure);
}

TEST(AmpiTest, PopulateRejectsPreSeededJob) {
  // Rank::send routes by `ChareId == rank`, so populate_ranks on a job
  // that already holds a chare would shift every id by one and silently
  // cross-deliver messages. It must refuse instead.
  AmpiRig rig{1};
  static_cast<void>(
      rig.job->add_chare(std::make_unique<Rank>(0, 1, [](Rank& self) {
        self.done();
      })));
  EXPECT_THROW(ampi::populate_ranks(*rig.job, 2, [](Rank& self) {
    self.done();
  }),
               CheckFailure);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/background_estimator.h"
#include "core/balancer_factory.h"
#include "core/gain_gated_lb.h"
#include "core/interference_aware_lb.h"
#include "core/replay.h"
#include "core/scenario.h"
#include "core/smoothed_lb.h"
#include "util/check.h"

namespace cloudlb {
namespace {

LbStats make_stats(int num_pes, const std::vector<double>& chare_cpu,
                   const std::vector<PeId>& assignment, double wall,
                   const std::vector<double>& background) {
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(num_pes));
  std::vector<double> task(static_cast<std::size_t>(num_pes), 0.0);
  stats.chares.resize(chare_cpu.size());
  for (std::size_t c = 0; c < chare_cpu.size(); ++c) {
    auto& ch = stats.chares[c];
    ch.chare = static_cast<ChareId>(c);
    ch.pe = assignment[c];
    ch.cpu_sec = chare_cpu[c];
    ch.bytes = 65536;
    task[static_cast<std::size_t>(ch.pe)] += ch.cpu_sec;
  }
  for (int p = 0; p < num_pes; ++p) {
    const auto i = static_cast<std::size_t>(p);
    auto& pe = stats.pes[i];
    pe.pe = p;
    pe.core = p;
    pe.wall_sec = wall;
    pe.task_cpu_sec = task[i];
    pe.core_idle_sec = std::max(0.0, wall - task[i] - background[i]);
  }
  return stats;
}

std::vector<double> loads(const LbStats& stats,
                          const std::vector<PeId>& assignment,
                          const std::vector<double>& background) {
  std::vector<double> load = background;
  for (std::size_t c = 0; c < assignment.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return load;
}

// ------------------------------------------------- BackgroundLoadEstimator

TEST(BackgroundEstimatorTest, QuietCoreEstimatesZero) {
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 4.0;
  pe.core_idle_sec = 6.0;
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 0.0);
}

TEST(BackgroundEstimatorTest, RecoversInterferenceShare) {
  // Eq. 2: wall 10 s, app tasks 4 s, idle 1 s → 5 s of somebody else.
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 4.0;
  pe.core_idle_sec = 1.0;
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 5.0);
}

TEST(BackgroundEstimatorTest, ClampsNegativeJitter) {
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 6.0;
  pe.core_idle_sec = 4.5;  // measurement jitter: sums past the wall clock
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 0.0);
}

TEST(BackgroundEstimatorTest, SanitizesNonFiniteSampleFields) {
  // A corrupt /proc/stat-style read (NaN wall clock, Inf idle, ...) must
  // not leak NaN/Inf into O_p — that would poison T_avg and with it every
  // balance decision downstream. Non-finite fields are treated as 0.
  PeSample pe;
  pe.wall_sec = std::numeric_limits<double>::quiet_NaN();
  pe.task_cpu_sec = 4.0;
  pe.core_idle_sec = 1.0;
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 0.0);  // 0 - 4 - 1, clamped

  pe.wall_sec = 10.0;
  pe.core_idle_sec = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 6.0);  // 10 - 4 - 0

  pe.core_idle_sec = 1.0;
  pe.task_cpu_sec = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 9.0);  // 10 - 0 - 1

  // Vector form stays finite even when one PE's sample is corrupt.
  LbStats stats = make_stats(3, {1.0, 1.0, 1.0}, {0, 1, 2}, 10.0,
                             {0.0, 3.0, 9.0});
  stats.pes[1].wall_sec = std::numeric_limits<double>::quiet_NaN();
  const auto bg = estimate_background_load(stats);
  for (const double b : bg) EXPECT_TRUE(std::isfinite(b));
}

TEST(BackgroundEstimatorTest, VectorVersionPerPe) {
  const LbStats stats = make_stats(3, {1.0, 1.0, 1.0}, {0, 1, 2}, 10.0,
                                   {0.0, 3.0, 9.0});
  const auto bg = estimate_background_load(stats);
  ASSERT_EQ(bg.size(), 3u);
  EXPECT_NEAR(bg[0], 0.0, 1e-12);
  EXPECT_NEAR(bg[1], 3.0, 1e-12);
  EXPECT_NEAR(bg[2], 9.0, 1e-12);
}

// --------------------------------------------------- InterferenceAwareRefineLb

TEST(InterferenceAwareLbTest, DrainsInterferedPe) {
  // Even app load, but PE0's core is half-eaten by a co-located VM.
  InterferenceAwareRefineLb lb;
  const std::vector<double> bg = {5.0, 0.0, 0.0, 0.0};
  const LbStats stats = make_stats(
      4, std::vector<double>(8, 1.25), {0, 0, 1, 1, 2, 2, 3, 3}, 10.0, bg);
  const auto result = lb.assign(stats);
  const auto after = loads(stats, result, bg);
  // PE0's background alone (5 s) exceeds T_avg (3.75 s): every movable
  // chare must leave it.
  EXPECT_DOUBLE_EQ(after[0], 5.0);
  // Receivers stay within ε of the average.
  const double t_avg =
      std::accumulate(after.begin(), after.end(), 0.0) / 4.0;
  for (std::size_t p = 1; p < 4; ++p)
    EXPECT_LE(after[p], t_avg * 1.05 + 1e-9);
  EXPECT_EQ(lb.total_migrations(), 2);
}

TEST(InterferenceAwareLbTest, NoInterferenceBehavesLikeRefine) {
  InterferenceAwareRefineLb lb;
  const std::vector<double> bg = {0.0, 0.0};
  const LbStats stats =
      make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 0, 0}, 10.0, bg);
  const auto result = lb.assign(stats);
  const auto after = loads(stats, result, bg);
  EXPECT_DOUBLE_EQ(after[0], 4.0);
  EXPECT_DOUBLE_EQ(after[1], 4.0);
}

TEST(InterferenceAwareLbTest, BalancedInterferedSystemLeftAlone) {
  // Interference present but loads already proportioned: no migrations.
  const std::vector<double> bg = {4.0, 0.0};
  const LbStats stats = make_stats(2, {1.0, 1.0, 3.0, 3.0}, {0, 0, 1, 1},
                                   10.0, bg);
  InterferenceAwareRefineLb lb;
  EXPECT_EQ(lb.assign(stats), stats.current_assignment());
  EXPECT_EQ(lb.total_migrations(), 0);
}

TEST(InterferenceAwareLbTest, WorkReturnsWhenInterferenceEnds) {
  // First window: PE0 interfered → drains. Second window: interference
  // gone → work flows back (the Figure 3 behaviour).
  InterferenceAwareRefineLb lb;
  std::vector<double> bg = {6.0, 0.0};
  const std::vector<double> cpu(8, 1.0);
  LbStats stats = make_stats(2, cpu, {0, 0, 0, 0, 1, 1, 1, 1}, 10.0, bg);
  const auto drained = lb.assign(stats);
  const auto load_drained = loads(stats, drained, bg);
  EXPECT_LT(load_drained[0] - bg[0], 4.0);  // app work moved off PE0

  bg = {0.0, 0.0};
  stats = make_stats(2, cpu, drained, 10.0, bg);
  const auto restored = lb.assign(stats);
  const auto load_restored = loads(stats, restored, bg);
  EXPECT_NEAR(load_restored[0], load_restored[1], 1.0 + 1e-9);
}

TEST(InterferenceAwareLbTest, Name) {
  EXPECT_EQ(InterferenceAwareRefineLb{}.name(), "ia-refine");
}

// --------------------------------------------------------- MigrationGainGatedLb

TEST(GainGatedLbTest, MigratesWhenGainDominates) {
  GainGateOptions options;
  options.migration_sec_per_byte = 1e-9;  // cheap network
  MigrationGainGatedLb lb{options};
  const std::vector<double> bg = {8.0, 0.0};
  const LbStats stats =
      make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 1, 1}, 10.0, bg);
  const auto result = lb.assign(stats);
  EXPECT_NE(result, stats.current_assignment());
  EXPECT_EQ(lb.migrating_steps(), 1);
  EXPECT_EQ(lb.gated_steps(), 0);
}

TEST(GainGatedLbTest, GatesWhenMigrationTooExpensive) {
  GainGateOptions options;
  options.migration_sec_per_byte = 1e-2;  // absurdly slow network
  MigrationGainGatedLb lb{options};
  const std::vector<double> bg = {8.0, 0.0};
  const LbStats stats =
      make_stats(2, {2.0, 2.0, 2.0, 2.0}, {0, 0, 1, 1}, 10.0, bg);
  EXPECT_EQ(lb.assign(stats), stats.current_assignment());
  EXPECT_EQ(lb.gated_steps(), 1);
  EXPECT_EQ(lb.migrating_steps(), 0);
}

TEST(GainGatedLbTest, NoMoveNeededCountsNeither) {
  MigrationGainGatedLb lb;
  const std::vector<double> bg = {0.0, 0.0};
  const LbStats stats = make_stats(2, {1.0, 1.0}, {0, 1}, 10.0, bg);
  EXPECT_EQ(lb.assign(stats), stats.current_assignment());
  EXPECT_EQ(lb.gated_steps(), 0);
  EXPECT_EQ(lb.migrating_steps(), 0);
}

TEST(GainGatedLbTest, ThresholdScalesTheGate) {
  // Pick costs so gain ≈ cost: threshold 0.5 lets it through, 2.0 blocks.
  const std::vector<double> bg = {4.0, 0.0};
  const LbStats stats = make_stats(2, {2.0, 2.0}, {0, 0}, 10.0, bg);
  // Gain: max load 8 → 6 (move one 2 s chare; receiver 2). Bytes 65536.
  GainGateOptions options;
  options.horizon_windows = 1.0;
  options.migration_sec_per_byte = 2.0 / 65536.0;  // cost = 2 s ≈ gain
  options.gain_threshold = 0.5;
  MigrationGainGatedLb permissive{options};
  EXPECT_NE(permissive.assign(stats), stats.current_assignment());
  options.gain_threshold = 2.0;
  MigrationGainGatedLb strict{options};
  EXPECT_EQ(strict.assign(stats), stats.current_assignment());
}

TEST(GainGatedLbTest, HorizonAmortizesMigrationCost) {
  // Same instance, cost slightly above one window's gain: a one-window
  // horizon gates, a long horizon migrates.
  const std::vector<double> bg = {4.0, 0.0};
  const LbStats stats = make_stats(2, {2.0, 2.0}, {0, 0}, 10.0, bg);
  GainGateOptions options;
  options.migration_sec_per_byte = 3.0 / 65536.0;  // cost 3 s > 2 s gain
  options.horizon_windows = 1.0;
  MigrationGainGatedLb myopic{options};
  EXPECT_EQ(myopic.assign(stats), stats.current_assignment());
  options.horizon_windows = 10.0;
  MigrationGainGatedLb persistent{options};
  EXPECT_NE(persistent.assign(stats), stats.current_assignment());
}

// ------------------------------------------------- SmoothedInterferenceAwareLb

TEST(SmoothedLbTest, AlphaOneMatchesPlainIaRefine) {
  SmoothedInterferenceAwareLb::Options options;
  options.alpha = 1.0;
  SmoothedInterferenceAwareLb smoothed{options};
  InterferenceAwareRefineLb plain;
  const std::vector<double> bg = {6.0, 0.0};
  const LbStats stats = make_stats(2, std::vector<double>(8, 1.0),
                                   {0, 0, 0, 0, 1, 1, 1, 1}, 10.0, bg);
  EXPECT_EQ(smoothed.assign(stats), plain.assign(stats));
}

TEST(SmoothedLbTest, EwmaConvergesToSteadyBackground) {
  SmoothedInterferenceAwareLb::Options options;
  options.alpha = 0.5;
  SmoothedInterferenceAwareLb lb{options};
  const std::vector<double> bg = {4.0, 0.0};
  std::vector<PeId> assign{0, 0, 1, 1};
  for (int window = 0; window < 8; ++window) {
    const LbStats stats =
        make_stats(2, {1.0, 1.0, 1.0, 1.0}, assign, 10.0, bg);
    assign = lb.assign(stats);
  }
  ASSERT_EQ(lb.smoothed_background().size(), 2u);
  EXPECT_NEAR(lb.smoothed_background()[0], 4.0, 0.1);
  EXPECT_NEAR(lb.smoothed_background()[1], 0.0, 1e-9);
}

TEST(SmoothedLbTest, DampsOneWindowBlip) {
  // A single noisy window barely moves the smoothed estimate.
  SmoothedInterferenceAwareLb::Options options;
  options.alpha = 0.2;
  SmoothedInterferenceAwareLb lb{options};
  const std::vector<double> quiet = {0.0, 0.0};
  const std::vector<double> blip = {8.0, 0.0};
  std::vector<PeId> assign{0, 0, 1, 1};
  const std::vector<double> cpu{1.0, 1.0, 1.0, 1.0};
  // Seed with several quiet windows.
  for (int w = 0; w < 3; ++w)
    assign = lb.assign(make_stats(2, cpu, assign, 10.0, quiet));
  // One blip window: smoothed O_p is only alpha * 8 = 1.6 s, below the
  // migration threshold for these loads, so nothing moves.
  const auto after_blip = lb.assign(make_stats(2, cpu, assign, 10.0, blip));
  EXPECT_EQ(after_blip, assign);
  EXPECT_NEAR(lb.smoothed_background()[0], 1.6, 1e-9);
}

TEST(SmoothedLbTest, ChareLoadSmoothingDampsSpikes) {
  SmoothedInterferenceAwareLb::Options options;
  options.alpha = 1.0;
  options.chare_alpha = 0.25;
  SmoothedInterferenceAwareLb lb{options};
  const std::vector<double> quiet = {0.0, 0.0};
  // Seed: balanced loads.
  std::vector<PeId> assign{0, 0, 1, 1};
  assign = lb.assign(make_stats(2, {1.0, 1.0, 1.0, 1.0}, assign, 10.0, quiet));
  // One window where chare 0 spikes 5x: the smoothed view sees only
  // 1 + 0.25*4 = 2.0, which stays inside the band → no migration.
  const auto after_spike =
      lb.assign(make_stats(2, {5.0, 1.0, 1.0, 1.0}, assign, 10.0, quiet));
  EXPECT_EQ(after_spike, assign);
  ASSERT_EQ(lb.smoothed_chare_loads().size(), 4u);
  EXPECT_NEAR(lb.smoothed_chare_loads()[0], 2.0, 1e-9);
  // A persistent shift eventually moves work.
  std::vector<PeId> current = assign;
  for (int w = 0; w < 8; ++w)
    current = lb.assign(make_stats(2, {5.0, 1.0, 1.0, 1.0}, current, 10.0, quiet));
  EXPECT_NE(current, assign);
}

TEST(SmoothedLbTest, AlphaValidated) {
  SmoothedInterferenceAwareLb::Options options;
  options.alpha = 0.0;
  EXPECT_THROW(SmoothedInterferenceAwareLb{options}, CheckFailure);
  options.alpha = 1.5;
  EXPECT_THROW(SmoothedInterferenceAwareLb{options}, CheckFailure);
  options.alpha = 0.5;
  options.chare_alpha = 0.0;
  EXPECT_THROW(SmoothedInterferenceAwareLb{options}, CheckFailure);
}

// ------------------------------------------------------------- replay

TEST(ReplayTest, ScoresStrategiesAgainstRecordedWindows) {
  // One interfered window: PE0 carries 6 s of background on even app load.
  const std::vector<double> bg = {6.0, 0.0};
  std::vector<LbStats> windows{
      make_stats(2, {1.0, 1.0, 1.0, 1.0}, {0, 0, 1, 1}, 10.0, bg)};

  InterferenceAwareRefineLb aware;
  const auto aware_rows = replay_stats(windows, aware);
  ASSERT_EQ(aware_rows.size(), 1u);
  EXPECT_NEAR(aware_rows[0].max_load_before, 8.0, 1e-9);
  EXPECT_LT(aware_rows[0].max_load_after, 8.0);
  EXPECT_GT(aware_rows[0].migrations, 0);

  // The blind baseline does nothing on the same trace.
  auto blind = make_balancer("refine");
  const auto blind_rows = replay_stats(windows, *blind);
  EXPECT_EQ(blind_rows[0].migrations, 0);
  EXPECT_NEAR(blind_rows[0].max_load_after,
              blind_rows[0].max_load_before, 1e-9);
}

TEST(ReplayTest, EmptyTraceYieldsNoRows) {
  InterferenceAwareRefineLb lb;
  EXPECT_TRUE(replay_stats({}, lb).empty());
}

// ------------------------------------------------------------ factory

TEST(BalancerFactoryTest, CreatesEveryName) {
  for (const auto& name : balancer_names()) {
    const auto lb = make_balancer(name);
    ASSERT_NE(lb, nullptr);
    EXPECT_EQ(lb->name(), name);
  }
}

TEST(BalancerFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_balancer("nope"), CheckFailure);
}

// ------------------------------------------------------------ scenario

TEST(ScenarioTest, PercentIncrease) {
  EXPECT_DOUBLE_EQ(percent_increase(2.0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(percent_increase(1.0, 1.0), 0.0);
  EXPECT_THROW(percent_increase(1.0, 0.0), CheckFailure);
}

ScenarioConfig small_config(const std::string& balancer) {
  ScenarioConfig config;
  config.app.name = "jacobi2d";
  config.app.iterations = 30;
  config.app_cores = 4;
  config.balancer = balancer;
  config.lb_period = 5;
  config.bg_iterations = 60;
  return config;
}

TEST(ScenarioTest, SoloRunHasNoBackground) {
  ScenarioConfig config = small_config("null");
  config.with_background = false;
  const RunResult r = run_scenario(config);
  EXPECT_FALSE(r.bg_elapsed.has_value());
  EXPECT_GT(r.app_elapsed.to_seconds(), 0.0);
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_GT(r.avg_power_watts, 40.0);  // above one node's base power
}

TEST(ScenarioTest, InterferenceSlowsApp) {
  ScenarioConfig config = small_config("null");
  config.with_background = false;
  const RunResult solo = run_scenario(config);
  config.with_background = true;
  const RunResult with_bg = run_scenario(config);
  EXPECT_GT(with_bg.app_elapsed.to_seconds(),
            1.5 * solo.app_elapsed.to_seconds());
  EXPECT_TRUE(with_bg.bg_elapsed.has_value());
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  const ScenarioConfig config = small_config("ia-refine");
  const RunResult a = run_scenario(config);
  const RunResult b = run_scenario(config);
  EXPECT_EQ(a.app_elapsed, b.app_elapsed);
  EXPECT_EQ(*a.bg_elapsed, *b.bg_elapsed);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.lb_migrations, b.lb_migrations);
}

// The borrowing overload must be bit-identical to the owning one, and —
// its reason to exist — leave the caller's strategy object alive so its
// diagnostics stay readable after the job tears down (the owning overload
// destroys the balancer with the job before returning).
TEST(ScenarioTest, BorrowedBalancerMatchesOwnedAndOutlivesRun) {
  const ScenarioConfig config = small_config("ia-refine");
  const RunResult owned = run_scenario(config);

  InterferenceAwareRefineLb lb{config.lb_options};
  const RunResult borrowed = run_scenario_with(config, lb);

  EXPECT_EQ(owned.app_elapsed, borrowed.app_elapsed);
  EXPECT_EQ(owned.lb_migrations, borrowed.lb_migrations);
  EXPECT_EQ(lb.total_migrations(), borrowed.lb_migrations);
  EXPECT_EQ(lb.garbage_fallbacks(), 0);
}

TEST(ScenarioTest, PenaltyExperimentInternallyConsistent) {
  const PenaltyResult r = run_penalty_experiment(small_config("null"));
  EXPECT_NEAR(r.app_penalty_pct,
              percent_increase(r.combined.app_elapsed.to_seconds(),
                               r.base.app_elapsed.to_seconds()),
              1e-9);
  EXPECT_NEAR(r.bg_penalty_pct,
              percent_increase(r.combined.bg_elapsed->to_seconds(),
                               r.bg_solo.to_seconds()),
              1e-9);
  EXPECT_GT(r.energy_overhead_pct, 0.0);
}

TEST(ScenarioTest, LbBeatsNoLbUnderInterference) {
  const PenaltyResult no_lb = run_penalty_experiment(small_config("null"));
  const PenaltyResult with_lb =
      run_penalty_experiment(small_config("ia-refine"));
  EXPECT_LT(with_lb.app_penalty_pct, no_lb.app_penalty_pct);
  EXPECT_LT(with_lb.energy_overhead_pct, no_lb.energy_overhead_pct);
  EXPECT_GT(with_lb.combined.lb_migrations, 0);
  EXPECT_EQ(no_lb.combined.lb_migrations, 0);
}

TEST(ScenarioTest, LbDrawsMorePowerButLessEnergy) {
  // Figure 4's core claim.
  const PenaltyResult no_lb = run_penalty_experiment(small_config("null"));
  const PenaltyResult with_lb =
      run_penalty_experiment(small_config("ia-refine"));
  EXPECT_GT(with_lb.combined.avg_power_watts,
            no_lb.combined.avg_power_watts);
  EXPECT_LT(with_lb.combined.energy_joules, no_lb.combined.energy_joules);
}

TEST(ScenarioTest, DelayedBackgroundStart) {
  ScenarioConfig config = small_config("null");
  config.bg_start = SimTime::seconds(2);
  const RunResult delayed = run_scenario(config);
  config.bg_start = SimTime::zero();
  const RunResult immediate = run_scenario(config);
  // Later interference → less of the app run is disturbed.
  EXPECT_LT(delayed.app_elapsed.to_seconds(),
            immediate.app_elapsed.to_seconds());
}

TEST(ScenarioTest, BgWeightAmplifiesPenalty) {
  // With a work-conserving scheduler, weights only matter while both jobs
  // are runnable — so the background must outlast the application.
  ScenarioConfig config = small_config("null");
  config.bg_iterations = 600;
  const RunResult fair = run_scenario(config);
  config.bg_weight = 4.0;
  const RunResult favoured = run_scenario(config);
  EXPECT_GT(favoured.app_elapsed.to_seconds(),
            1.4 * fair.app_elapsed.to_seconds());
}

TEST(ScenarioTest, TimelineTracerSeesBothJobs) {
  ScenarioConfig config = small_config("ia-refine");
  TimelineTracer tracer;
  run_scenario(config, &tracer);
  bool saw_app = false, saw_bg = false;
  for (const auto& ti : tracer.intervals()) {
    saw_app |= ti.job == "jacobi2d";
    saw_bg |= ti.job == "bg";
  }
  EXPECT_TRUE(saw_app);
  EXPECT_TRUE(saw_bg);
  EXPECT_FALSE(tracer.lb_marks().empty());
}

TEST(ScenarioTest, ConfigValidation) {
  ScenarioConfig config = small_config("null");
  config.bg_cores = 8;  // more than app_cores
  EXPECT_THROW(run_scenario(config), CheckFailure);
}

}  // namespace
}  // namespace cloudlb

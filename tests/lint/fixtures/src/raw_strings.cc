// Lint fixture: raw string literals and line continuations. Forbidden
// tokens inside R"(...)" bodies (including multi-line ones and custom
// delimiters) and inside backslash-continued // comments are data, not
// code, and must not fire; real code before or after them still must.
#include <string>

namespace cloudlb_lint_fixture {

// A raw string whose *body* names every banned construct: no findings.
inline std::string grammar_help() {
  return R"(usage: seed with std::random_device or std::rand();
wall-clock via std::chrono::steady_clock::now() or time(nullptr);
float loads and assert(x) are likewise only words in this string)";
}

// Custom delimiter, plus a `)"` decoy inside the body.
inline std::string tricky_delimiter() {
  return R"lint(a body with )" inside, and std::rand() too)lint";
}

// A token merely ending in R does not open a raw string; the literal
// after it is an ordinary (blanked) string, not a raw-string opener.
#define SEEDR "seed-"
inline std::string not_raw = SEEDR"std::rand()";

// Scanning resumes after a one-line raw string: the call outside the
// literal fires.
inline int after_raw() {
  std::string spec = R"(std::rand())";
  return static_cast<int>(spec.size()) + std::rand();  // EXPECT-LINT(ambient-rng)
}

// A // comment continued by a trailing backslash swallows the next \
physical line too: time(nullptr) here is commentary, not a call.

// Escaped quote inside an ordinary string, then real code after it.
inline const char* kQuote = "say \"std::rand()\" loudly";

}  // namespace cloudlb_lint_fixture

// Lint fixture: a src/sim/ file defining a hot-path function without
// pulling in the effect annotations header — the warm-path contract is
// invisible to the whole-program analyzer.
namespace fixture {

struct MiniEngine {
  int pending = 0;
};

int schedule_at(MiniEngine& e, long long t) {  // EXPECT-LINT(warm-path-annotation)
  (void)t;
  return ++e.pending;
}

}  // namespace fixture

// Lint fixture: hot-path definitions with the annotations header
// included — the rule stays quiet however many definitions follow, and
// call sites / declarations never trigger it in the first place.
#include "util/shard_annotations.h"

namespace fixture {

struct MiniEngine {
  int pending = 0;
  bool step();           // declaration: not a definition
  void fire_next(int);   // declaration: not a definition
};

bool step_engine(MiniEngine& e) {
  // A member call is an object expression, not a definition.
  return e.step();
}

bool MiniEngine::step() { return pending-- > 0; }

void MiniEngine::fire_next(int n) { pending += n; }

}  // namespace fixture

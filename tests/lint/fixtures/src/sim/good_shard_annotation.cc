// Lint fixture: the same per-shard surface with the effect annotations
// header included — the rule stays quiet however many triggers follow.
#include "util/shard_annotations.h"

namespace fixture {

struct Window {
  int per_shard_backlog[4];
  long long window_shard_deadline_ns[4];
};

}  // namespace fixture

// Lint fixture: a deliberate opt-out of the annotations header for a
// cold diagnostic helper, suppressed in place.
namespace fixture {

struct DebugProbe {
  int fired = 0;
};

void fire_debug_probe(DebugProbe& p) {  // NOLINT-CLOUDLB(warm-path-annotation)
  ++p.fired;
}

}  // namespace fixture

// Lint fixture: the shard-annotation rule is scoped to src/runtime/ and
// src/sim/; the same surface elsewhere in src/ stays quiet.
namespace fixture {

struct Window {
  int per_shard_backlog[4];
};

}  // namespace fixture

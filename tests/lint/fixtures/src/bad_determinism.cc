// Lint fixture: deliberately nondeterministic code. Every annotated line
// must trip exactly the rule named in its EXPECT-LINT comment; the
// selftest fails on any missing or extra diagnostic. Never compiled and
// never linted as part of the real tree (tests/lint/fixtures is excluded
// from tree walks).
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace cloudlb_lint_fixture {

struct Rng {};

double ambient_time_reads() {
  auto wall = std::chrono::system_clock::now();    // EXPECT-LINT(wall-clock)
  auto mono = std::chrono::steady_clock::now();    // EXPECT-LINT(wall-clock)
  (void)wall;
  (void)mono;
  return static_cast<double>(time(nullptr));       // EXPECT-LINT(wall-clock)
}

int ambient_randomness() {
  std::random_device entropy;                      // EXPECT-LINT(ambient-rng)
  std::mt19937 gen;                                // EXPECT-LINT(ambient-rng)
  Rng local;                                       // EXPECT-LINT(ambient-rng)
  (void)gen;
  (void)local;
  std::srand(entropy());                           // EXPECT-LINT(ambient-rng)
  return std::rand();                              // EXPECT-LINT(ambient-rng)
}

double narrowed_load_accounting(double t_avg) {
  float share = 0.5F;                              // EXPECT-LINT(float-load)
  assert(t_avg >= 0.0);                            // EXPECT-LINT(assert)
  return t_avg * static_cast<double>(share);
}

double regressed_wall_slack(double median, double wall) {
  // The pre-wall_slack() form of the clamp ceiling: the tolerance
  // literal duplicated at the use site instead of flowing through the
  // named helper.
  return 4.0 * median + 0.05 * wall;               // EXPECT-LINT(float-literal)
}

double regressed_wall_slack_flipped(double wall) {
  return wall * 0.05;                              // EXPECT-LINT(float-literal)
}

}  // namespace cloudlb_lint_fixture

// Lint fixture: every line below would fire a rule, and every one is
// silenced by a same-line NOLINT-CLOUDLB naming that rule. No EXPECT-LINT
// annotations — the selftest fails if suppression ever stops working.
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace cloudlb_lint_fixture {

inline unsigned reseed_from_os() {
  std::random_device entropy;  // NOLINT-CLOUDLB(ambient-rng): fixture exercising suppression
  return entropy();
}

inline double multi_rule(const std::unordered_map<int, float>& m) {  // NOLINT-CLOUDLB(float-load)
  double total = 0.0;
  for (const std::pair<const int, float>& kv : m) {  // NOLINT-CLOUDLB(unordered-iter,float-load)
    total += static_cast<double>(kv.first) + static_cast<double>(kv.second);
  }
  total += static_cast<double>(std::rand());  // NOLINT-CLOUDLB(ambient-rng)
  return total;
}

}  // namespace cloudlb_lint_fixture

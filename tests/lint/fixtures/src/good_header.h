#pragma once
// Lint fixture: a well-formed header. No EXPECT-LINT annotations — the
// selftest fails if any rule fires here.
#include <cstdint>

namespace cloudlb_lint_fixture {

inline std::int64_t widen(int x) { return static_cast<std::int64_t>(x); }

}  // namespace cloudlb_lint_fixture

// Lint fixture: hash-order iteration and naked ownership. See
// bad_determinism.cc for how the EXPECT-LINT protocol works.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cloudlb_lint_fixture {

double sum_shares(const std::unordered_map<int, double>& shares) {
  double total = 0.0;
  for (const auto& [pe, load] : shares) {          // EXPECT-LINT(unordered-iter)
    total += static_cast<double>(pe) * load;
  }
  return total;
}

struct Registry {
  std::unordered_set<int> live_pes_;

  int count_live() const {
    int n = 0;
    for (int pe : live_pes_) {                     // EXPECT-LINT(unordered-iter)
      n += pe >= 0 ? 1 : 0;
    }
    return n;
  }
};

int* naked_ownership() {
  int* block = new int[8];                         // EXPECT-LINT(naked-new)
  delete[] block;                                  // EXPECT-LINT(naked-new)
  int* one = new int{7};                           // EXPECT-LINT(naked-new)
  delete one;                                      // EXPECT-LINT(naked-new)
  return nullptr;
}

}  // namespace cloudlb_lint_fixture

// Lint fixture: a partitioned-runtime file touching per-shard state
// without pulling in the effect annotations header.
namespace fixture {

struct Window {
  int per_shard_backlog[4];  // EXPECT-LINT(shard-annotation)
};

}  // namespace fixture

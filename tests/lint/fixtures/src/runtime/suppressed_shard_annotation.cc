// Lint fixture: a deliberate opt-out of the annotations header,
// suppressed in place.
namespace fixture {

struct Probe {
  int per_shard_debug_taps[2];  // NOLINT-CLOUDLB(shard-annotation)
};

}  // namespace fixture

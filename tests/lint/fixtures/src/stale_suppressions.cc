// Lint fixture: the stale-nolint meta-rule. A NOLINT-CLOUDLB that
// suppresses nothing on its line is dead weight (the code it excused was
// fixed) or a typo (the rule name never existed); both are findings.
// Suppressions for `analyzer-*` rules belong to tools/analyzer/ and are
// exempt — the Python linter cannot tell whether they are live.
#include <cstdlib>
#include <random>

namespace cloudlb_lint_fixture {

// Consumed suppression: ambient-rng fires here and is silenced — not stale.
inline unsigned live_suppression() {
  std::random_device entropy;  // NOLINT-CLOUDLB(ambient-rng): suppression stays live
  return entropy();
}

// The rule exists but nothing on this line triggers it any more.
inline int fixed_long_ago = 42;  // NOLINT-CLOUDLB(ambient-rng) // EXPECT-LINT(stale-nolint)

// A typo'd rule name can never fire: flagged instead of silently ignored.
inline unsigned typo() {
  return static_cast<unsigned>(std::rand());  // NOLINT-CLOUDLB(ambient-rgn) // EXPECT-LINT(ambient-rng,stale-nolint)
}

// One live name plus one stale name on the same line: only the stale one
// is reported.
inline unsigned half_stale() {
  return static_cast<unsigned>(std::rand());  // NOLINT-CLOUDLB(ambient-rng,wall-clock) // EXPECT-LINT(stale-nolint)
}

// AST-analyzer suppressions are the Clang tool's to account for.
inline int analyzer_owned = 0;  // NOLINT-CLOUDLB(analyzer-stale-handle): checked by cloudlb-analyzer

}  // namespace cloudlb_lint_fixture

// Lint fixture: the legitimate counterparts of every rule. No EXPECT-LINT
// annotations — the selftest fails if anything below fires.
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace cloudlb_lint_fixture {

struct Rng {
  explicit Rng(unsigned long long seed) : seed_{seed} {}
  unsigned long long seed_;
};

struct Balancer {
  // Trailing-underscore members are seeded by the constructor, not
  // default-constructed, so the ambient-rng rule must leave them alone.
  Rng rng_;
  std::unordered_map<int, double> cache_;

  explicit Balancer(unsigned long long seed) : rng_{seed} {}
  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  // Point lookups into an unordered container are deterministic; only
  // iteration order is hash-dependent.
  double lookup(int pe) const {
    auto it = cache_.find(pe);
    return it == cache_.end() ? 0.0 : it->second;
  }
};

double seeded_and_ordered(unsigned long long seed) {
  Rng rng{seed};
  std::map<int, double> shares{{0, 0.25}, {1, 0.75}};
  double total = static_cast<double>(rng.seed_ % 2);
  for (const auto& [pe, share] : shares) {
    total += static_cast<double>(pe) * share;
  }
  return total;
}

std::unique_ptr<std::vector<int>> owned() {
  return std::make_unique<std::vector<int>>(8);
}

// The canonical wall-slack shape: defining the named constant is fine
// (no multiplication on the line); multiplying through the *name* is the
// whole point of the float-literal rule.
constexpr double kWallSlackFraction = 0.05;

double named_wall_slack(double wall) {
  return kWallSlackFraction * wall;
}

}  // namespace cloudlb_lint_fixture

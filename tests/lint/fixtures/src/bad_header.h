// Lint fixture: a header that forgets its include guard and leaks a
// namespace into every includer. The pragma-once diagnostic lands on the
// first non-blank, non-comment line.
#include <vector>  // EXPECT-LINT(pragma-once)

using namespace std;  // EXPECT-LINT(using-namespace)

inline int fixture_size(const std::vector<int>& v) {
  return static_cast<int>(v.size());
}

// Lint fixture: code under tests/ where the src-only rules (wall-clock,
// naked-new, assert, float-load) must NOT fire. Tests may time things,
// stub allocators, and use plain assert; only the cross-tree rules
// (ambient-rng, unordered-iter, header hygiene) follow them here. No
// EXPECT-LINT annotations — the selftest fails if any rule fires.
#include <cassert>
#include <chrono>

namespace cloudlb_lint_fixture {

inline double measure_once() {
  const auto start = std::chrono::steady_clock::now();
  int* scratch = new int[4];
  float narrow = 1.0F;
  assert(scratch != nullptr);
  delete[] scratch;
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count() +
         static_cast<double>(narrow);
}

}  // namespace cloudlb_lint_fixture

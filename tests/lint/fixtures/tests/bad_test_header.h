// Lint fixture: header hygiene applies in every tree, including tests/.
namespace cloudlb_lint_fixture {  // EXPECT-LINT(pragma-once)

using namespace std;  // EXPECT-LINT(using-namespace)

inline int answer() { return 42; }

}  // namespace cloudlb_lint_fixture

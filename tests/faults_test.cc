// The hardened fault tier: spec-parser contracts, injector semantics, the
// estimator and LB degradation paths, the simulator's clock-fault policy,
// migration retry/abandon bookkeeping — and a 256-scenario property suite
// that runs randomized fault plans against a real Jacobi2D job and checks
// the invariants no fault is allowed to break:
//
//   1. no chare is ever lost or duplicated across a failed migration
//      (pinned bitwise against the serial Jacobi reference),
//   2. T_avg conservation (Eq. 1): reassignment moves load, never creates
//      or destroys it,
//   3. the simulator clock never regresses.
//
// The suite is seeded; set CLOUDLB_FAULT_SEED_BASE to shift all 256 worlds
// to a fresh region of seed space (the CI fault tier runs three bases).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>

#include "apps/jacobi2d.h"
#include "core/background_estimator.h"
#include "core/interference_aware_lb.h"
#include "faults/fault_injector.h"
#include "faults/fault_spec.h"
#include "machine/machine.h"
#include "runtime/job.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

// ----------------------------------------------------------- spec parser

TEST(FaultSpecTest, ParsesEveryModelWithExplicitKeys) {
  const FaultPlan plan = FaultPlan::parse(
      "spike(core=2,start=0.5,duration=1,duty=0.75,weight=2);"
      "square(core=1,start=0.1,period=2,on=0.5,duty=0.5);"
      "pareto(cores=3,alpha=1.2,min_on=0.05,mean_off=0.7,duty=0.9);"
      "drop(prob=0.1);stale(prob=0.2);"
      "corrupt(prob=0.3,mode=nan);jitter(sigma=0.004);"
      "failmig(prob=0.4,partial=0.6);seed(value=42)");
  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_EQ(plan.spikes[0].core, 2);
  EXPECT_EQ(plan.spikes[0].start, SimTime::from_seconds(0.5));
  EXPECT_EQ(plan.spikes[0].duration, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(plan.spikes[0].duty, 0.75);
  EXPECT_DOUBLE_EQ(plan.spikes[0].weight, 2.0);
  ASSERT_EQ(plan.squares.size(), 1u);
  EXPECT_EQ(plan.squares[0].on, SimTime::from_seconds(0.5));
  ASSERT_EQ(plan.paretos.size(), 1u);
  EXPECT_EQ(plan.paretos[0].cores, 3);
  EXPECT_DOUBLE_EQ(plan.paretos[0].alpha, 1.2);
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.drops[0].prob, 0.1);
  ASSERT_EQ(plan.stales.size(), 1u);
  ASSERT_EQ(plan.corruptions.size(), 1u);
  EXPECT_EQ(plan.corruptions[0].mode, CorruptMode::kNan);
  ASSERT_EQ(plan.jitters.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.jitters[0].sigma_sec, 0.004);
  ASSERT_EQ(plan.migration_faults.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.migration_faults[0].partial, 0.6);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultSpecTest, DefaultsApplyWhenKeysOmitted) {
  const FaultPlan plan = FaultPlan::parse("spike;failmig(prob=1)");
  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.spikes[0].duty, 1.0);
  EXPECT_DOUBLE_EQ(plan.migration_faults[0].partial, 0.5);
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultSpecTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
}

TEST(FaultSpecTest, UnknownModelThrows) {
  EXPECT_THROW(FaultPlan::parse("spoke(core=1)"), CheckFailure);
}

TEST(FaultSpecTest, UnknownKeyThrows) {
  // A typo'd key must be an error, never a silently-inert fault.
  EXPECT_THROW(FaultPlan::parse("drop(probe=0.5)"), CheckFailure);
}

TEST(FaultSpecTest, DuplicateKeyThrows) {
  EXPECT_THROW(FaultPlan::parse("drop(prob=0.1,prob=0.2)"), CheckFailure);
}

TEST(FaultSpecTest, OutOfRangeProbabilityThrows) {
  EXPECT_THROW(FaultPlan::parse("drop(prob=1.5)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("failmig(prob=-0.1)"), CheckFailure);
}

TEST(FaultSpecTest, MalformedClausesThrow) {
  EXPECT_THROW(FaultPlan::parse("drop(prob=0.1"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("drop(prob)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("drop(prob=abc)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("square(on=2,period=1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("corrupt(prob=0.1,mode=weird)"),
               CheckFailure);
  EXPECT_THROW(FaultPlan::parse("pareto(alpha=0)"), CheckFailure);
}

// A typo must fail at parse time — before any simulation runs — not abort
// mid-run inside an Rng precondition. Zero-intensity values (duty=0,
// duration=0, on=0) stay legal sweep points; impossible ones throw here.
TEST(FaultSpecTest, NonInertGarbageTimingThrowsAtParse) {
  EXPECT_THROW(FaultPlan::parse("pareto(mean_off=0)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("pareto(mean_off=-1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("pareto(min_on=-0.1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("spike(start=-1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("spike(duration=-1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("square(start=-1)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("square(period=0,on=0)"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("square(period=-1,on=0)"), CheckFailure);
  // The legal zero points still parse.
  EXPECT_EQ(FaultPlan::parse("spike(duration=0)").spikes.size(), 1u);
  EXPECT_EQ(FaultPlan::parse("square(on=0)").squares.size(), 1u);
  EXPECT_EQ(FaultPlan::parse("pareto(duty=0)").paretos.size(), 1u);
}

// ------------------------------------------------------- injector basics

LbStats two_pe_stats() {
  LbStats stats;
  stats.pes.resize(2);
  for (int p = 0; p < 2; ++p) {
    stats.pes[static_cast<std::size_t>(p)].pe = p;
    stats.pes[static_cast<std::size_t>(p)].core = p;
    stats.pes[static_cast<std::size_t>(p)].wall_sec = 10.0;
    stats.pes[static_cast<std::size_t>(p)].core_idle_sec = 4.0;
  }
  stats.chares.resize(4);
  for (int c = 0; c < 4; ++c) {
    auto& ch = stats.chares[static_cast<std::size_t>(c)];
    ch.chare = c;
    ch.pe = c % 2;
    ch.cpu_sec = 1.0 + c;
    ch.bytes = 1024;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  return stats;
}

TEST(FaultInjectorTest, ZeroIntensityPlanIsInertAndTouchesNothing) {
  FaultInjector injector{FaultPlan::parse(
      "spike(duty=0);drop(prob=0);stale(prob=0);corrupt(prob=0);"
      "jitter(sigma=0);failmig(prob=0)")};
  EXPECT_TRUE(injector.inert());

  LbStats stats = two_pe_stats();
  const LbStats before = stats;
  injector.perturb_stats(stats);
  for (std::size_t c = 0; c < stats.chares.size(); ++c)
    EXPECT_EQ(stats.chares[c].cpu_sec, before.chares[c].cpu_sec);
  for (std::size_t p = 0; p < stats.pes.size(); ++p) {
    EXPECT_EQ(stats.pes[p].wall_sec, before.pes[p].wall_sec);
    EXPECT_EQ(stats.pes[p].core_idle_sec, before.pes[p].core_idle_sec);
  }
  EXPECT_EQ(injector.on_migration({0, 0, 1, 0}), MigrationFault::kNone);
  EXPECT_EQ(injector.counters().samples_dropped, 0);
  EXPECT_EQ(injector.counters().migration_faults, 0);
}

TEST(FaultInjectorTest, DropAtProbOneZeroesEveryRowAndRepairsPeSums) {
  FaultInjector injector{FaultPlan::parse("drop(prob=1)")};
  LbStats stats = two_pe_stats();
  injector.perturb_stats(stats);
  for (const ChareSample& ch : stats.chares) EXPECT_EQ(ch.cpu_sec, 0.0);
  // The per-PE task sums come from the same lost rows.
  for (const PeSample& pe : stats.pes) EXPECT_EQ(pe.task_cpu_sec, 0.0);
  EXPECT_EQ(injector.counters().samples_dropped, 4);
}

TEST(FaultInjectorTest, StaleReplaysTrueValuesOfThePreviousWindow) {
  FaultInjector injector{FaultPlan::parse("stale(prob=1)")};
  LbStats first = two_pe_stats();
  injector.perturb_stats(first);  // no previous window: a no-op
  EXPECT_EQ(injector.counters().samples_staled, 0);

  LbStats second = two_pe_stats();
  for (ChareSample& ch : second.chares) ch.cpu_sec *= 3.0;
  injector.perturb_stats(second);
  EXPECT_EQ(injector.counters().samples_staled, 4);
  const LbStats reference = two_pe_stats();
  for (std::size_t c = 0; c < second.chares.size(); ++c)
    EXPECT_DOUBLE_EQ(second.chares[c].cpu_sec, reference.chares[c].cpu_sec);
}

TEST(FaultInjectorTest, CorruptNegativeFailsTheSanityGate) {
  FaultInjector injector{FaultPlan::parse("corrupt(prob=1,mode=negative)")};
  LbStats stats = two_pe_stats();
  ASSERT_TRUE(stats_sane(stats));
  injector.perturb_stats(stats);
  EXPECT_EQ(injector.counters().pes_corrupted, 2);
  EXPECT_FALSE(stats_sane(stats));
  // Garbage in, bounded estimate out: the boundary clamp holds regardless.
  for (const double o : estimate_background_load(stats)) {
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 10.0 + 1e-9);
  }
}

TEST(FaultInjectorTest, JitterKeepsReadingsNonNegative) {
  FaultInjector injector{FaultPlan::parse("jitter(sigma=100);seed(value=3)")};
  LbStats stats = two_pe_stats();
  injector.perturb_stats(stats);
  EXPECT_EQ(injector.counters().pes_jittered, 2);
  for (const PeSample& pe : stats.pes) {
    EXPECT_GE(pe.wall_sec, 0.0);
    EXPECT_GE(pe.core_idle_sec, 0.0);
  }
}

TEST(FaultInjectorTest, MigrationVerdictsFollowPartialSplit) {
  FaultInjector source{FaultPlan::parse("failmig(prob=1,partial=0)")};
  FaultInjector dest{FaultPlan::parse("failmig(prob=1,partial=1)")};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(source.on_migration({i, 0, 1, 0}),
              MigrationFault::kFailAtSource);
    EXPECT_EQ(dest.on_migration({i, 0, 1, 0}), MigrationFault::kFailAtDest);
  }
  EXPECT_EQ(source.counters().migration_faults, 8);
}

TEST(FaultInjectorTest, SameSeedSamePerturbation) {
  auto run = [](std::uint64_t seed) {
    FaultInjector injector{FaultPlan::parse(
        "drop(prob=0.5);jitter(sigma=0.1);seed(value=" +
        std::to_string(seed) + ")")};
    LbStats stats = two_pe_stats();
    injector.perturb_stats(stats);
    return stats;
  };
  const LbStats a = run(9), b = run(9), c = run(10);
  bool differs = false;
  for (std::size_t i = 0; i < a.chares.size(); ++i) {
    EXPECT_EQ(a.chares[i].cpu_sec, b.chares[i].cpu_sec);
    differs |= a.chares[i].cpu_sec != c.chares[i].cpu_sec;
  }
  for (std::size_t p = 0; p < a.pes.size(); ++p) {
    EXPECT_EQ(a.pes[p].wall_sec, b.pes[p].wall_sec);
    differs |= a.pes[p].wall_sec != c.pes[p].wall_sec;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical perturbations";
}

// -------------------------------------- estimator boundary clamp (Eq. 2)

TEST(EstimatorClampTest, FiniteNegativeIdleCannotExceedTheWindow) {
  // Regression: wall − task − idle with idle < 0 used to exceed T_lb and
  // poison T_avg for every PE; the estimate is now clamped into [0, T_lb].
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 3.0;
  pe.core_idle_sec = -5.0;  // corrupted counter: raw Eq. 2 gives 12 > T_lb
  const double estimate = estimate_background_load(pe);
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, pe.wall_sec);
  EXPECT_DOUBLE_EQ(estimate, 10.0);
}

TEST(EstimatorClampTest, OverflowingIdleIsClampedToTheWindow) {
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 1.0;
  pe.core_idle_sec = -1e300;
  EXPECT_DOUBLE_EQ(estimate_background_load(pe), 10.0);
}

TEST(EstimatorClampTest, NonFiniteFieldsYieldFiniteEstimates) {
  PeSample pe;
  pe.wall_sec = 10.0;
  pe.task_cpu_sec = 3.0;
  pe.core_idle_sec = std::numeric_limits<double>::quiet_NaN();
  const double estimate = estimate_background_load(pe);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, pe.wall_sec);
}

TEST(EstimatorClampTest, SanityGateFlagsCorruptSamples) {
  PeSample ok;
  ok.wall_sec = 10.0;
  ok.task_cpu_sec = 4.0;
  ok.core_idle_sec = 5.0;
  EXPECT_TRUE(pe_sample_sane(ok));

  PeSample negative = ok;
  negative.core_idle_sec = -0.5;
  EXPECT_FALSE(pe_sample_sane(negative));

  PeSample nan = ok;
  nan.wall_sec = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(pe_sample_sane(nan));

  PeSample impossible = ok;
  impossible.core_idle_sec = 25.0;  // idle cannot exceed the window
  EXPECT_FALSE(pe_sample_sane(impossible));

  // Small jitter past the window is tolerated (jiffy rounding).
  PeSample jittered = ok;
  jittered.core_idle_sec = 10.0 + 1e-12;
  EXPECT_TRUE(pe_sample_sane(jittered));
}

// ----------------------------------------------- windowed outlier clamp

LbStats stats_with_background(double bg) {
  LbStats stats;
  stats.pes.resize(1);
  stats.pes[0].pe = 0;
  stats.pes[0].wall_sec = 10.0;
  stats.pes[0].task_cpu_sec = 2.0;
  stats.pes[0].core_idle_sec = std::max(0.0, 10.0 - 2.0 - bg);
  return stats;
}

TEST(WindowedEstimatorTest, OneWindowSpikeIsClamped) {
  WindowedBackgroundEstimator est{5, 4.0};
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(est.estimate(stats_with_background(0.5))[0], 0.5, 1e-9);
  ASSERT_EQ(est.clamped_count(), 0);
  // A one-window glitch: raw O_p jumps 16x. The clamp caps it at
  // 4 × median + the shared wall-slack tolerance.
  const double clamped = est.estimate(stats_with_background(8.0))[0];
  EXPECT_EQ(est.clamped_count(), 1);
  EXPECT_NEAR(clamped, 4.0 * 0.5 + wall_slack(10.0), 1e-12);
}

TEST(WindowedEstimatorTest, SustainedShiftPassesWithinHalfAWindow) {
  WindowedBackgroundEstimator est{5, 4.0};
  for (int i = 0; i < 5; ++i) est.estimate(stats_with_background(0.5));
  // Raw values (not clamped ones) enter the history, so a genuine
  // sustained rise shifts the median and unlatches the clamp once a
  // majority of the window (3 of 5 samples) sits at the new level.
  double value = 0.0;
  for (int i = 0; i < 4; ++i)
    value = est.estimate(stats_with_background(6.0))[0];
  EXPECT_NEAR(value, 6.0, 1e-9);
}

TEST(WindowedEstimatorTest, PeCountChangeResetsHistory) {
  WindowedBackgroundEstimator est{5, 4.0};
  for (int i = 0; i < 5; ++i) est.estimate(stats_with_background(0.5));
  LbStats two = stats_with_background(8.0);
  two.pes.push_back(two.pes[0]);
  two.pes[1].pe = 1;
  const auto out = est.estimate(two);
  ASSERT_EQ(out.size(), 2u);
  // Fresh history: nothing to clamp against.
  EXPECT_NEAR(out[0], 8.0, 1e-9);
}

// ------------------------------------------------- LB garbage fallback

LbStats balanced_two_pe_stats() {
  LbStats stats = two_pe_stats();
  // Rebalance idle so the snapshot is self-consistent and needs no moves.
  for (PeSample& pe : stats.pes)
    pe.core_idle_sec = pe.wall_sec - pe.task_cpu_sec;
  return stats;
}

TEST(LbFallbackTest, InsaneStatsKeepTheLastGoodAssignment) {
  LbOptions options;
  options.robustness.fallback_on_insane_stats = true;
  InterferenceAwareRefineLb lb{options};

  LbStats garbage = balanced_two_pe_stats();
  garbage.pes[1].core_idle_sec = std::numeric_limits<double>::quiet_NaN();
  const auto out = lb.assign(garbage);
  EXPECT_EQ(out, garbage.current_assignment());
  EXPECT_EQ(lb.garbage_fallbacks(), 1);
  EXPECT_EQ(lb.total_migrations(), 0);

  // A sane window goes back through the normal path.
  lb.assign(balanced_two_pe_stats());
  EXPECT_EQ(lb.garbage_fallbacks(), 1);
}

TEST(LbFallbackTest, DisabledFallbackStillProducesAValidAssignment) {
  InterferenceAwareRefineLb lb;  // vanilla: no sanity gate
  LbStats garbage = balanced_two_pe_stats();
  garbage.pes[0].core_idle_sec = -1e300;
  const auto out = lb.assign(garbage);
  ASSERT_EQ(out.size(), garbage.chares.size());
  for (const PeId pe : out) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, static_cast<PeId>(garbage.pes.size()));
  }
}

// ---------------------------------------------- simulator clock policy

TEST(ClockFaultPolicyTest, StrictThrowsWhenAnEventFiresBehindTheClock) {
  Simulator sim;
  ASSERT_EQ(sim.clock_fault_policy(), Simulator::ClockFaultPolicy::kStrict);
  bool fired = false;
  sim.schedule_at(SimTime::millis(10), [&fired] { fired = true; });
  sim.fault_advance_clock(SimTime::millis(20));
  EXPECT_THROW(static_cast<void>(sim.step()), CheckFailure);
  EXPECT_FALSE(fired);
}

TEST(ClockFaultPolicyTest, RecoverExecutesLateEventsAtTheCurrentClock) {
  Simulator sim;
  sim.set_clock_fault_policy(Simulator::ClockFaultPolicy::kRecover);
  SimTime fired_at;
  sim.schedule_at(SimTime::millis(10),
                  [&fired_at, &sim] { fired_at = sim.now(); });
  sim.fault_advance_clock(SimTime::millis(20));
  EXPECT_TRUE(sim.step());
  // The clock never regresses: the late event runs at the perturbed now().
  EXPECT_EQ(fired_at, SimTime::millis(20));
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  EXPECT_EQ(sim.clock_recoveries(), 1u);
}

TEST(ClockFaultPolicyTest, StrictRunUntilRefusesATargetBehindTheClock) {
  Simulator sim;
  sim.fault_advance_clock(SimTime::millis(20));
  EXPECT_THROW(sim.run_until(SimTime::millis(15)), CheckFailure);
}

TEST(ClockFaultPolicyTest, RecoverRunUntilDrainsBypassedEvents) {
  Simulator sim;
  sim.set_clock_fault_policy(Simulator::ClockFaultPolicy::kRecover);
  int fired = 0;
  sim.schedule_at(SimTime::millis(10), [&fired] { ++fired; });
  sim.fault_advance_clock(SimTime::millis(20));
  // Target behind the perturbed clock: treated as run_until(now()), the
  // bypassed event runs late, and time ends where it already was.
  sim.run_until(SimTime::millis(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  EXPECT_GE(sim.clock_recoveries(), 1u);
}

TEST(ClockFaultPolicyTest, FaultAdvanceNeverMovesTheClockBackwards) {
  Simulator sim;
  sim.fault_advance_clock(SimTime::millis(20));
  sim.fault_advance_clock(SimTime::millis(5));
  EXPECT_EQ(sim.now(), SimTime::millis(20));
}

// ------------------------------------------- migration retry / abandon

/// Forces a migration of every chare at every LB step: assignment
/// rotates one PE to the right. The worst case for the retry machinery.
class RotateLb final : public LoadBalancer {
 public:
  std::string name() const override { return "rotate"; }
  std::vector<PeId> assign(const LbStats& stats) override {
    std::vector<PeId> out = stats.current_assignment();
    for (PeId& pe : out)
      pe = static_cast<PeId>((pe + 1) % static_cast<PeId>(stats.pes.size()));
    return out;
  }
};

struct MigrationFaultRun {
  RuntimeJob::Counters counters;
  std::vector<PeId> final_assignment;
  bool jacobi_bitwise_ok = false;
};

MigrationFaultRun run_with_migration_faults(const std::string& spec,
                                            int retries) {
  Simulator sim;
  MachineConfig mc;
  mc.nodes = 1;
  mc.cores_per_node = 4;
  Machine machine{sim, mc};
  VirtualMachine vm{machine, "app", {0, 1, 2, 3}};

  FaultInjector injector{FaultPlan::parse(spec)};
  JobConfig jc;
  jc.lb_period = 2;
  jc.faults = &injector;
  jc.migration_max_retries = retries;
  RuntimeJob job{sim, vm, jc, std::make_unique<RotateLb>()};

  Jacobi2dConfig config;
  config.layout.grid_x = 32;
  config.layout.grid_y = 32;
  config.layout.blocks_x = 4;
  config.layout.blocks_y = 2;
  config.layout.iterations = 8;
  config.layout.sec_per_point = 1e-7;
  populate_jacobi2d(job, config);

  job.start();
  while (!job.finished()) EXPECT_TRUE(sim.step());

  MigrationFaultRun out;
  out.counters = job.counters();
  for (std::size_t c = 0; c < job.num_chares(); ++c)
    out.final_assignment.push_back(job.pe_of(static_cast<ChareId>(c)));

  const auto serial = jacobi2d_reference(config);
  out.jacobi_bitwise_ok = true;
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    auto* chare =
        dynamic_cast<Jacobi2dChare*>(&job.chare(static_cast<ChareId>(c)));
    const auto block = chare->block_values();
    for (int y = 0; y < chare->ny() && out.jacobi_bitwise_ok; ++y)
      for (int x = 0; x < chare->nx(); ++x)
        if (block[static_cast<std::size_t>(y * chare->nx() + x)] !=
            serial[static_cast<std::size_t>(chare->y0() + y) * 32 +
                   static_cast<std::size_t>(chare->x0() + x)]) {
          out.jacobi_bitwise_ok = false;
          break;
        }
  }
  return out;
}

TEST(MigrationFaultTest, CertainFailureWithoutRetriesAbandonsEveryMove) {
  const MigrationFaultRun r =
      run_with_migration_faults("failmig(prob=1,partial=0)", /*retries=*/0);
  ASSERT_GT(r.counters.migrations, 0);
  // Every decided migration died at the source and was abandoned; the
  // chare stayed put, nothing was lost, and the computation is bit-exact.
  EXPECT_EQ(r.counters.migrations_failed, r.counters.migrations);
  EXPECT_EQ(r.counters.migration_retries, 0);
  EXPECT_TRUE(r.jacobi_bitwise_ok);
  // All migrations abandoned => the block-wise initial mapping survives.
  for (std::size_t c = 0; c < r.final_assignment.size(); ++c)
    EXPECT_EQ(r.final_assignment[c],
              static_cast<PeId>(c * 4 / r.final_assignment.size()));
}

TEST(MigrationFaultTest, PartialFailuresAreAlsoRolledBack) {
  const MigrationFaultRun r =
      run_with_migration_faults("failmig(prob=1,partial=1)", /*retries=*/0);
  ASSERT_GT(r.counters.migrations, 0);
  EXPECT_EQ(r.counters.migrations_failed, r.counters.migrations);
  EXPECT_TRUE(r.jacobi_bitwise_ok);
}

TEST(MigrationFaultTest, RetriesAreCountedAndExhausted) {
  const MigrationFaultRun r =
      run_with_migration_faults("failmig(prob=1,partial=0.5);seed(value=5)",
                                /*retries=*/2);
  ASSERT_GT(r.counters.migrations, 0);
  // prob = 1: every attempt fails, so each migration burns all retries.
  EXPECT_EQ(r.counters.migration_retries, 2 * r.counters.migrations);
  EXPECT_EQ(r.counters.migrations_failed, r.counters.migrations);
  EXPECT_TRUE(r.jacobi_bitwise_ok);
}

TEST(MigrationFaultTest, FlakyMigrationsEventuallySucceedWithRetries) {
  const MigrationFaultRun r = run_with_migration_faults(
      "failmig(prob=0.5);seed(value=11)", /*retries=*/8);
  ASSERT_GT(r.counters.migrations, 0);
  // With 8 retries at p = 0.5, abandoning is a ~0.2% tail event per
  // migration; the run sees a handful of migrations, so none abandon.
  EXPECT_EQ(r.counters.migrations_failed, 0);
  EXPECT_GT(r.counters.migration_retries, 0);
  EXPECT_TRUE(r.jacobi_bitwise_ok);
}

// --------------------------------------- 256-scenario property suite

std::uint64_t seed_base() {
  const char* env = std::getenv("CLOUDLB_FAULT_SEED_BASE");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

std::string random_fault_spec(Rng& rng, std::uint64_t seed) {
  std::ostringstream spec;
  spec << "seed(value=" << seed << ")";
  if (rng.next_double() < 0.4)
    spec << ";spike(core=" << rng.uniform_int(0, 3)
         << ",start=" << rng.uniform(0.0, 0.05)
         << ",duration=" << rng.uniform(0.0, 0.2)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  if (rng.next_double() < 0.3) {
    const double period = rng.uniform(0.02, 0.2);
    spec << ";square(core=" << rng.uniform_int(0, 3)
         << ",start=" << rng.uniform(0.0, 0.05) << ",period=" << period
         << ",on=" << rng.uniform(0.0, period)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  }
  if (rng.next_double() < 0.25)
    spec << ";pareto(cores=" << rng.uniform_int(0, 2)
         << ",alpha=" << rng.uniform(1.1, 3.0)
         << ",min_on=" << rng.uniform(0.001, 0.02)
         << ",mean_off=" << rng.uniform(0.05, 0.5)
         << ",duty=" << rng.uniform(0.0, 1.0) << ")";
  if (rng.next_double() < 0.5)
    spec << ";drop(prob=" << rng.uniform(0.0, 0.5) << ")";
  if (rng.next_double() < 0.5)
    spec << ";stale(prob=" << rng.uniform(0.0, 0.5) << ")";
  if (rng.next_double() < 0.5) {
    const char* const modes[] = {"negative", "nan", "overflow", "mixed"};
    spec << ";corrupt(prob=" << rng.uniform(0.0, 0.4)
         << ",mode=" << modes[rng.uniform_int(0, 3)] << ")";
  }
  if (rng.next_double() < 0.4)
    spec << ";jitter(sigma=" << rng.uniform(0.0, 0.005) << ")";
  if (rng.next_double() < 0.6)
    spec << ";failmig(prob=" << rng.uniform(0.0, 1.0)
         << ",partial=" << rng.uniform(0.0, 1.0) << ")";
  return spec.str();
}

/// Wraps a real strategy and checks load conservation (Eq. 1) on every
/// window: reassignment may move load between PEs but never create or
/// destroy it, and the resulting T_avg is exactly the pre-LB T_avg.
class ConservationCheckingLb final : public LoadBalancer {
 public:
  explicit ConservationCheckingLb(std::unique_ptr<LoadBalancer> inner)
      : inner_{std::move(inner)} {}

  std::string name() const override { return inner_->name() + "+conserve"; }

  std::vector<PeId> assign(const LbStats& stats) override {
    std::vector<PeId> out = inner_->assign(stats);
    ++windows_;
    const auto pes = static_cast<PeId>(stats.pes.size());
    if (out.size() != stats.chares.size()) {
      ++violations_;
      return out;
    }
    const std::vector<double> background = estimate_background_load(stats);
    double total_before = 0.0, total_after = 0.0;
    for (const ChareSample& ch : stats.chares) total_before += ch.cpu_sec;
    std::vector<double> load(stats.pes.size(), 0.0);
    for (std::size_t c = 0; c < out.size(); ++c) {
      if (out[c] < 0 || out[c] >= pes) {
        ++violations_;
        return out;
      }
      load[static_cast<std::size_t>(out[c])] += stats.chares[c].cpu_sec;
    }
    for (const double l : load) total_after += l;
    const double bg_total =
        std::accumulate(background.begin(), background.end(), 0.0);
    const double t_avg_before =
        (total_before + bg_total) / static_cast<double>(pes);
    const double t_avg_after =
        (total_after + bg_total) / static_cast<double>(pes);
    const double tol = 1e-9 * std::max(1.0, total_before);
    if (std::abs(total_after - total_before) > tol) ++violations_;
    if (std::abs(t_avg_after - t_avg_before) > tol) ++violations_;
    return out;
  }

  int windows() const { return windows_; }
  int violations() const { return violations_; }

 private:
  std::unique_ptr<LoadBalancer> inner_;
  int windows_ = 0;
  int violations_ = 0;
};

class FaultScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultScenarioTest, InvariantsSurviveRandomFaultPlans) {
  const std::uint64_t seed =
      seed_base() * 1'000'003ull + static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const std::string spec = random_fault_spec(rng, seed);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " spec=\"" + spec + "\"");

  FaultInjector injector{FaultPlan::parse(spec)};

  Simulator sim;
  if (!injector.inert())
    sim.set_clock_fault_policy(Simulator::ClockFaultPolicy::kRecover);
  MachineConfig mc;
  mc.nodes = 1;
  mc.cores_per_node = 4;
  Machine machine{sim, mc};
  const int cores = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<CoreId> ids(static_cast<std::size_t>(cores));
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{machine, "app", ids};

  JobConfig jc;
  jc.lb_period = 2;
  jc.faults = &injector;
  jc.migration_max_retries = static_cast<int>(rng.uniform_int(0, 3));

  LbOptions options;
  options.robustness.fallback_on_insane_stats = rng.next_double() < 0.5;
  options.robustness.estimator_window =
      rng.next_double() < 0.5 ? 4 : 0;
  auto checker = std::make_unique<ConservationCheckingLb>(
      std::make_unique<InterferenceAwareRefineLb>(options));
  const ConservationCheckingLb* probe = checker.get();
  RuntimeJob job{sim, vm, jc, std::move(checker)};

  Jacobi2dConfig config;
  config.layout.grid_x = 32;
  config.layout.grid_y = 32;
  config.layout.blocks_x = 4;
  config.layout.blocks_y = 2;
  config.layout.iterations = 8;
  config.layout.sec_per_point = 1e-7;
  populate_jacobi2d(job, config);

  injector.install_interference(sim, machine);
  job.start();

  // Invariant 3: the simulator clock never regresses, no matter what the
  // plan perturbed. 50M events is far past any sane run — hitting it
  // means a fault path livelocked the job.
  SimTime prev = sim.now();
  std::uint64_t steps = 0;
  while (!job.finished()) {
    ASSERT_TRUE(sim.step()) << "simulation stalled before the job finished";
    ASSERT_GE(sim.now(), prev) << "simulator clock regressed";
    prev = sim.now();
    ASSERT_LT(++steps, 50'000'000ull) << "event-count ceiling hit";
  }

  // Invariant 2: Eq. 1 conservation held on every LB window.
  EXPECT_GT(probe->windows(), 0);
  EXPECT_EQ(probe->violations(), 0);

  // Invariant 1: no chare lost or duplicated — the computation is
  // bit-exact against the serial reference, failed migrations included.
  const auto serial = jacobi2d_reference(config);
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    const PeId pe = job.pe_of(static_cast<ChareId>(c));
    ASSERT_GE(pe, 0);
    ASSERT_LT(pe, static_cast<PeId>(cores));
    auto* chare =
        dynamic_cast<Jacobi2dChare*>(&job.chare(static_cast<ChareId>(c)));
    const auto block = chare->block_values();
    for (int y = 0; y < chare->ny(); ++y)
      for (int x = 0; x < chare->nx(); ++x)
        ASSERT_EQ(
            block[static_cast<std::size_t>(y * chare->nx() + x)],
            serial[static_cast<std::size_t>(chare->y0() + y) * 32 +
                   static_cast<std::size_t>(chare->x0() + x)])
            << "chare " << c << " diverged from the serial reference";
  }

  // Bookkeeping sanity: a migration abandons at most once.
  EXPECT_LE(job.counters().migrations_failed, job.counters().migrations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScenarioTest, ::testing::Range(0, 256));

}  // namespace
}  // namespace cloudlb

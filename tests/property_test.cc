// Property-based suites: randomized instances checked against invariants
// that must hold for ANY input, parameterized over seeds so failures are
// reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/jacobi2d.h"
#include "apps/wave2d.h"
#include "core/background_estimator.h"
#include "lb/greedy_lb.h"
#include "lb/null_lb.h"
#include "lb/refinement.h"
#include "machine/core.h"
#include "machine/machine.h"
#include "runtime/ampi.h"
#include "runtime/job.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

// ------------------------------------------- processor-sharing invariants

class CorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CorePropertyTest, WorkConservationUnderRandomLoad) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  Simulator sim;
  Core core{sim, 0};

  const int num_contexts = static_cast<int>(rng.uniform_int(1, 6));
  struct Ctx {
    ContextId id;
    double total_demanded = 0.0;
    int completions = 0;
  };
  std::vector<Ctx> contexts;
  for (int c = 0; c < num_contexts; ++c)
    contexts.push_back(
        Ctx{core.register_context("c" + std::to_string(c),
                                  rng.uniform(0.5, 4.0))});

  // Random demand chains with random gaps, all scheduled up front.
  int outstanding = 0;
  std::function<void(std::size_t, int)> issue = [&](std::size_t c,
                                                    int remaining) {
    if (remaining == 0) {
      --outstanding;
      return;
    }
    const double cpu = rng.uniform(0.001, 0.2);
    contexts[c].total_demanded += cpu;
    const SimTime gap = SimTime::from_seconds(rng.uniform(0.0, 0.05));
    sim.schedule_after(gap, [&, c, cpu, remaining] {
      core.demand(contexts[c].id, SimTime::from_seconds(cpu), [&, c, remaining] {
        ++contexts[c].completions;
        issue(c, remaining - 1);
      });
    });
  };
  std::vector<int> chain_lengths;
  for (std::size_t c = 0; c < contexts.size(); ++c) {
    ++outstanding;
    const int len = static_cast<int>(rng.uniform_int(1, 12));
    chain_lengths.push_back(len);
    issue(c, len);
  }
  sim.run();

  // 1. Every chain drained.
  for (std::size_t c = 0; c < contexts.size(); ++c)
    EXPECT_EQ(contexts[c].completions, chain_lengths[c]);

  // 2. Work conservation: each context consumed exactly what it demanded.
  double total_demanded = 0.0, total_consumed = 0.0;
  for (const Ctx& ctx : contexts) {
    const double consumed = core.context_cpu_time(ctx.id).to_seconds();
    EXPECT_NEAR(consumed, ctx.total_demanded, 1e-6);
    total_demanded += ctx.total_demanded;
    total_consumed += consumed;
  }

  // 3. The core was busy exactly as long as the per-context CPU adds up
  //    (speed 1.0), and busy + idle == elapsed wall clock.
  const ProcStat st = core.proc_stat();
  EXPECT_NEAR(st.busy.to_seconds(), total_consumed, 1e-5);
  EXPECT_NEAR(st.busy.to_seconds() + st.idle.to_seconds(),
              sim.now().to_seconds(), 1e-6);

  // 4. The run cannot finish faster than the serial sum of all CPU.
  EXPECT_GE(sim.now().to_seconds() + 1e-6, total_demanded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertyTest, ::testing::Range(1, 25));

// ------------------------------------------------------- simulator fuzzing

class SimulatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorPropertyTest, OrderingAndCancellationInvariants) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  Simulator sim;

  std::vector<SimTime> fire_times;
  std::vector<EventHandle> handles;
  int scheduled = 0;
  for (int i = 0; i < 500; ++i) {
    const auto t = SimTime::nanos(rng.uniform_int(0, 1'000'000));
    handles.push_back(sim.schedule_at(
        t, [&fire_times, &sim] { fire_times.push_back(sim.now()); }));
    ++scheduled;
  }
  int cancelled = 0;
  for (const EventHandle& h : handles)
    if (rng.next_double() < 0.3 && sim.cancel(h)) ++cancelled;
  sim.run();

  // 1. Fired + cancelled == scheduled.
  EXPECT_EQ(static_cast<int>(fire_times.size()) + cancelled, scheduled);
  // 2. Non-decreasing firing order.
  for (std::size_t i = 1; i < fire_times.size(); ++i)
    EXPECT_GE(fire_times[i], fire_times[i - 1]);
  // 3. Executed counter agrees.
  EXPECT_EQ(sim.executed(), fire_times.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest, ::testing::Range(1, 13));

// -------------------------------------------------- refinement quality

class RefinementQualityTest : public ::testing::TestWithParam<int> {};

LbStats random_stats(Rng& rng, int pes, int chares,
                     std::vector<double>* external) {
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(pes));
  external->assign(static_cast<std::size_t>(pes), 0.0);
  for (int p = 0; p < pes; ++p) {
    stats.pes[static_cast<std::size_t>(p)].pe = p;
    stats.pes[static_cast<std::size_t>(p)].core = p;
    stats.pes[static_cast<std::size_t>(p)].wall_sec = 100.0;
    if (rng.next_double() < 0.3)
      (*external)[static_cast<std::size_t>(p)] = rng.uniform(0.0, 10.0);
  }
  stats.chares.resize(static_cast<std::size_t>(chares));
  for (int c = 0; c < chares; ++c) {
    auto& ch = stats.chares[static_cast<std::size_t>(c)];
    ch.chare = c;
    ch.pe = static_cast<PeId>(rng.uniform_int(0, pes - 1));
    ch.cpu_sec = rng.uniform(0.0, 3.0);
    ch.bytes = 1024;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  for (int p = 0; p < pes; ++p) {
    auto& pe = stats.pes[static_cast<std::size_t>(p)];
    pe.core_idle_sec = std::max(
        0.0, pe.wall_sec - pe.task_cpu_sec -
                 (*external)[static_cast<std::size_t>(p)]);
  }
  return stats;
}

std::vector<double> loads_of(const LbStats& stats,
                             const std::vector<PeId>& assignment,
                             const std::vector<double>& external) {
  std::vector<double> load = external;
  for (std::size_t c = 0; c < assignment.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return load;
}

TEST_P(RefinementQualityTest, NeverWorsensMakespanAndMovesSparingly) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 104729};
  const int pes = static_cast<int>(rng.uniform_int(2, 24));
  const int chares = static_cast<int>(rng.uniform_int(pes, pes * 10));
  std::vector<double> external;
  const LbStats stats = random_stats(rng, pes, chares, &external);

  const auto before = loads_of(stats, stats.current_assignment(), external);
  const auto r = refine_assignment(stats, external, 0.05);
  const auto after = loads_of(stats, r.assignment, external);

  // 1. The max load never increases (makespan proxy for tight coupling).
  EXPECT_LE(*std::max_element(after.begin(), after.end()),
            *std::max_element(before.begin(), before.end()) + 1e-9);

  // 2. Load is conserved.
  EXPECT_NEAR(std::accumulate(after.begin(), after.end(), 0.0),
              std::accumulate(before.begin(), before.end(), 0.0), 1e-9);

  // 3. Refinement moves at most the chares of overloaded PEs (it never
  //    reshuffles balanced ones) — bounded by total chares, and zero when
  //    the input is already balanced.
  EXPECT_LE(r.migrations, chares);
  if (load_imbalance(before) < 0.05) {
    EXPECT_EQ(r.migrations, 0);
  }

  // 4. Greedy-from-scratch is the quality yardstick: refinement ends
  //    within max-task of greedy's makespan (it cannot split or swap).
  GreedyLb greedy;
  const auto g = loads_of(stats, greedy.assign(stats), external);
  double max_task = 0.0;
  for (const auto& ch : stats.chares) max_task = std::max(max_task, ch.cpu_sec);
  const double max_ext =
      *std::max_element(external.begin(), external.end());
  EXPECT_LE(*std::max_element(after.begin(), after.end()),
            *std::max_element(g.begin(), g.end()) + max_task + max_ext + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementQualityTest,
                         ::testing::Range(1, 41));

// ------------------------------------------------ refinement safety net
//
// Invariants that must hold for ANY instance and ANY engine options — the
// safety net under the indexed-engine rewrite (see also
// refinement_diff_test.cc for naive-vs-indexed equivalence).

class RefinementSafetyTest : public ::testing::TestWithParam<int> {};

TEST_P(RefinementSafetyTest, NeverRaisesMaxLoadOrOverloadsReceiver) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 48611 + 5};
  const int pes = static_cast<int>(rng.uniform_int(2, 48));
  const int chares = static_cast<int>(rng.uniform_int(pes, pes * 12));
  std::vector<double> external;
  const LbStats stats = random_stats(rng, pes, chares, &external);

  RefinementOptions options;
  const double eps_choices[] = {0.0, 0.02, 0.05, 0.2};
  options.epsilon_fraction =
      eps_choices[static_cast<std::size_t>(GetParam()) % 4];
  options.tie_break = GetParam() % 2 == 0 ? RefinementTieBreak::kLowestId
                                          : RefinementTieBreak::kHighestId;
  if (GetParam() % 5 == 0)
    options.max_migrations = static_cast<int>(rng.uniform_int(0, 8));

  const auto before = loads_of(stats, stats.current_assignment(), external);
  const double t_avg =
      std::accumulate(before.begin(), before.end(), 0.0) /
      static_cast<double>(pes);
  const double eps = options.epsilon_fraction * t_avg;

  const auto r = refine_assignment(stats, external, options);
  const auto after = loads_of(stats, r.assignment, external);

  // 1. The maximum per-PE load never increases.
  EXPECT_LE(*std::max_element(after.begin(), after.end()),
            *std::max_element(before.begin(), before.end()) + 1e-9);

  // 2. Eq. 3 guard: no chare lands on a PE that ends above T_avg + ε —
  //    i.e. every PE whose load grew is within the tolerance ceiling.
  for (int p = 0; p < pes; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (after[i] > before[i] + 1e-12) {
      EXPECT_LE(after[i], t_avg + eps + 1e-9)
          << "PE " << p << " was overloaded by a migration";
    }
  }

  // 3. The reported makespan matches an independent recomputation.
  EXPECT_NEAR(r.max_load, *std::max_element(after.begin(), after.end()),
              1e-9);

  // 4. Migration cap respected.
  if (options.max_migrations >= 0) {
    EXPECT_LE(r.migrations, options.max_migrations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementSafetyTest,
                         ::testing::Range(1, 61));

// ----------------------------------------- stencil geometry sweep (bitwise)

struct StencilGeometry {
  int grid_x, grid_y, blocks_x, blocks_y, cores;
};

class StencilGeometryTest
    : public ::testing::TestWithParam<StencilGeometry> {};

TEST_P(StencilGeometryTest, JacobiMatchesReferenceBitwise) {
  const StencilGeometry g = GetParam();
  Jacobi2dConfig config;
  config.layout.grid_x = g.grid_x;
  config.layout.grid_y = g.grid_y;
  config.layout.blocks_x = g.blocks_x;
  config.layout.blocks_y = g.blocks_y;
  config.layout.iterations = 10;
  config.layout.sec_per_point = 1e-7;

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
  std::vector<CoreId> ids(static_cast<std::size_t>(g.cores));
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{machine, "app", ids};
  JobConfig jc;
  jc.lb_period = 0;
  RuntimeJob job{sim, vm, jc, std::make_unique<NullLb>()};
  populate_jacobi2d(job, config);
  job.start();
  sim.run();
  ASSERT_TRUE(job.finished());

  const auto serial = jacobi2d_reference(config);
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    auto* chare =
        dynamic_cast<Jacobi2dChare*>(&job.chare(static_cast<ChareId>(c)));
    const auto block = chare->block_values();
    for (int y = 0; y < chare->ny(); ++y)
      for (int x = 0; x < chare->nx(); ++x)
        ASSERT_EQ(
            block[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(chare->nx()) +
                  static_cast<std::size_t>(x)],
            serial[static_cast<std::size_t>(chare->y0() + y) *
                       static_cast<std::size_t>(g.grid_x) +
                   static_cast<std::size_t>(chare->x0() + x)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StencilGeometryTest,
    ::testing::Values(StencilGeometry{16, 16, 1, 1, 1},   // single block
                      StencilGeometry{16, 16, 4, 4, 2},   // square
                      StencilGeometry{33, 9, 5, 3, 3},    // ragged blocks
                      StencilGeometry{64, 8, 8, 1, 4},    // 1D strip
                      StencilGeometry{8, 64, 1, 8, 4},    // 1D column
                      StencilGeometry{40, 40, 8, 8, 8},   // chare == 5x5
                      StencilGeometry{23, 17, 7, 5, 6}),  // primes
    [](const auto& test_info) {
      const StencilGeometry& g = test_info.param;
      return std::to_string(g.grid_x) + "x" + std::to_string(g.grid_y) +
             "_b" + std::to_string(g.blocks_x) + "x" +
             std::to_string(g.blocks_y) + "_p" + std::to_string(g.cores);
    });

TEST_P(StencilGeometryTest, WaveMatchesReferenceBitwise) {
  const StencilGeometry g = GetParam();
  Wave2dConfig config;
  config.layout.grid_x = g.grid_x;
  config.layout.grid_y = g.grid_y;
  config.layout.blocks_x = g.blocks_x;
  config.layout.blocks_y = g.blocks_y;
  config.layout.iterations = 10;
  config.layout.sec_per_point = 1e-7;

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
  std::vector<CoreId> ids(static_cast<std::size_t>(g.cores));
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{machine, "app", ids};
  JobConfig jc;
  jc.lb_period = 0;
  RuntimeJob job{sim, vm, jc, std::make_unique<NullLb>()};
  populate_wave2d(job, config);
  job.start();
  sim.run();
  ASSERT_TRUE(job.finished());

  const auto serial = wave2d_reference(config);
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    auto* chare =
        dynamic_cast<Wave2dChare*>(&job.chare(static_cast<ChareId>(c)));
    const auto block = chare->block_values();
    for (int y = 0; y < chare->ny(); ++y)
      for (int x = 0; x < chare->nx(); ++x)
        ASSERT_EQ(
            block[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(chare->nx()) +
                  static_cast<std::size_t>(x)],
            serial[static_cast<std::size_t>(chare->y0() + y) *
                       static_cast<std::size_t>(g.grid_x) +
                   static_cast<std::size_t>(chare->x0() + x)]);
  }
}

// --------------------------------------------------------- AMPI properties

class AmpiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AmpiPropertyTest, AllreduceCorrectForRandomWorlds) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 977};
  const int ranks = static_cast<int>(rng.uniform_int(2, 24));
  const int cores = static_cast<int>(rng.uniform_int(1, std::min(ranks, 8)));
  std::vector<double> values(static_cast<std::size_t>(ranks));
  double expected = 0.0;
  for (auto& v : values) {
    v = rng.uniform(-10.0, 10.0);
    expected += v;
  }

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}};
  std::vector<CoreId> ids(static_cast<std::size_t>(cores));
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{machine, "ampi", ids};
  JobConfig jc;
  jc.lb_period = 0;
  RuntimeJob job{sim, vm, jc, std::make_unique<NullLb>()};

  std::vector<double> results;
  ampi::populate_ranks(job, ranks, [&](ampi::Rank& self) {
    // Stagger entry with random compute so contributions interleave with
    // unrelated point-to-point traffic.
    const auto delay =
        SimTime::from_seconds(rng.uniform(0.0, 0.01));
    self.compute(delay, [&self, &values, &results] {
      const int next = (self.rank() + 1) % self.world_size();
      self.send(next, 1, {static_cast<double>(self.rank())});
      self.allreduce_sum(
          values[static_cast<std::size_t>(self.rank())], [&](double total) {
            results.push_back(total);
            const int prev = (self.rank() + self.world_size() - 1) %
                             self.world_size();
            self.recv(prev, 1, [&self](std::vector<double>) { self.done(); });
          });
    });
  });
  job.start();
  sim.run();
  ASSERT_TRUE(job.finished());
  ASSERT_EQ(results.size(), static_cast<std::size_t>(ranks));
  for (const double r : results) EXPECT_NEAR(r, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmpiPropertyTest, ::testing::Range(1, 13));

// --------------------------------------------------- estimator soundness

class EstimatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorPropertyTest, EstimateBoundedAndExactOnConsistentInput) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31};
  // Construct a physically consistent sample: wall = task + idle + bg.
  PeSample pe;
  pe.wall_sec = rng.uniform(1.0, 50.0);
  const double task = rng.uniform(0.0, pe.wall_sec);
  const double bg = rng.uniform(0.0, pe.wall_sec - task);
  pe.task_cpu_sec = task;
  pe.core_idle_sec = pe.wall_sec - task - bg;
  const double estimate = estimate_background_load(pe);
  EXPECT_NEAR(estimate, bg, 1e-9);
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, pe.wall_sec + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorPropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace cloudlb

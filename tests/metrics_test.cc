#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "lb/null_lb.h"
#include "machine/machine.h"
#include "metrics/profile.h"
#include "metrics/timeline.h"
#include "runtime/job.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

/// Minimal worker for driving the tracer through a real job.
class TickChare final : public Chare {
 public:
  TickChare(int iterations, SimTime cost)
      : iterations_{iterations}, cost_{cost} {}
  void on_start() override { send(id(), 0, {}); }
  SimTime cost(const Message&) const override { return cost_; }
  void execute(const Message&) override {
    if (++done_ >= iterations_) {
      finish();
      return;
    }
    send(id(), 0, {});
  }

 private:
  int iterations_;
  SimTime cost_;
  int done_ = 0;
};

struct TraceRig {
  TraceRig() : machine(sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}) {}

  RuntimeJob& make_job(const std::string& name, std::vector<CoreId> cores) {
    vms.push_back(std::make_unique<VirtualMachine>(machine, name, cores));
    JobConfig config;
    config.name = name;
    config.lb_period = 0;
    jobs.push_back(std::make_unique<RuntimeJob>(sim, *vms.back(), config,
                                                std::make_unique<NullLb>()));
    jobs.back()->set_observer(&tracer);
    return *jobs.back();
  }

  Simulator sim;
  Machine machine;
  TimelineTracer tracer;
  std::vector<std::unique_ptr<VirtualMachine>> vms;
  std::vector<std::unique_ptr<RuntimeJob>> jobs;
};

TEST(TimelineTest, RecordsTaskIntervals) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(5, SimTime::millis(10))));
  job.start();
  rig.sim.run();
  ASSERT_EQ(rig.tracer.intervals().size(), 5u);
  for (const auto& ti : rig.tracer.intervals()) {
    EXPECT_EQ(ti.job, "app");
    EXPECT_EQ(ti.core, 0);
    EXPECT_NEAR((ti.end - ti.start).to_seconds(), 0.010, 1e-6);
  }
}

TEST(TimelineTest, BusyFractionMatchesLoad) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(10, SimTime::millis(50))));
  job.start();
  rig.sim.run();
  const SimTime end = job.finish_time();
  EXPECT_NEAR(rig.tracer.busy_fraction(0, "app", SimTime::zero(), end), 1.0,
              0.02);
  EXPECT_DOUBLE_EQ(rig.tracer.busy_fraction(1, "app", SimTime::zero(), end),
                   0.0);
}

TEST(TimelineTest, TwoJobsOnOneCoreBothVisible) {
  TraceRig rig;
  RuntimeJob& app = rig.make_job("app", {0});
  RuntimeJob& bg = rig.make_job("bg", {0});
  static_cast<void>(app.add_chare(std::make_unique<TickChare>(10, SimTime::millis(20))));
  static_cast<void>(bg.add_chare(std::make_unique<TickChare>(10, SimTime::millis(20))));
  app.start();
  bg.start();
  rig.sim.run();
  const SimTime end = std::max(app.finish_time(), bg.finish_time());
  const double app_frac =
      rig.tracer.busy_fraction(0, "app", SimTime::zero(), end);
  const double bg_frac =
      rig.tracer.busy_fraction(0, "bg", SimTime::zero(), end);
  // Both share the core; wall intervals overlap, so each job's intervals
  // cover most of the window (the long Projections bars of Figure 1b).
  EXPECT_GT(app_frac, 0.8);
  EXPECT_GT(bg_frac, 0.8);
}

TEST(TimelineTest, AsciiRenderShowsBusyAndIdle) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(4, SimTime::millis(25))));
  job.start();
  rig.sim.run();
  std::ostringstream os;
  // Render a window twice the busy period: half the row must be idle dots.
  rig.tracer.render_ascii(os, 2, SimTime::zero(), SimTime::millis(200), 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("core 0"), std::string::npos);
  EXPECT_NE(out.find("core 1"), std::string::npos);
  EXPECT_NE(out.find('A'), std::string::npos);  // busy buckets (job "app")
  EXPECT_NE(out.find('.'), std::string::npos);  // idle buckets
}

TEST(TimelineTest, AsciiRenderArgumentValidation) {
  TimelineTracer tracer;
  std::ostringstream os;
  EXPECT_THROW(
      tracer.render_ascii(os, 1, SimTime::seconds(1), SimTime::zero(), 10),
      CheckFailure);
  EXPECT_THROW(tracer.render_ascii(os, 1, SimTime::zero(), SimTime::seconds(1), 0),
               CheckFailure);
}

TEST(TimelineTest, CsvExportWellFormed) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(3, SimTime::millis(5))));
  job.start();
  rig.sim.run();
  std::ostringstream os;
  rig.tracer.write_csv(os);
  std::istringstream in{os.str()};
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + 3);  // header + one row per task
  EXPECT_EQ(os.str().substr(0, 4), "job,");
}

TEST(TimelineTest, ClearResets) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(3, SimTime::millis(5))));
  job.start();
  rig.sim.run();
  EXPECT_FALSE(rig.tracer.intervals().empty());
  rig.tracer.clear();
  EXPECT_TRUE(rig.tracer.intervals().empty());
  EXPECT_TRUE(rig.tracer.lb_marks().empty());
}

// ---------------------------------------------------------------- profiles

TEST(ProfileTest, QuietCoresProfileAsIdle) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0});
  static_cast<void>(job.add_chare(std::make_unique<TickChare>(4, SimTime::millis(25))));
  job.start();
  rig.sim.run();
  const auto profiles = profile_cores(rig.tracer, 4, SimTime::zero(),
                                      SimTime::millis(200));
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_NEAR(profiles[0].busy_fraction, 0.5, 0.02);  // 100 ms of 200 ms
  EXPECT_NEAR(profiles[0].by_job.at("app"), 0.5, 0.02);
  for (int c = 1; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(profiles[static_cast<std::size_t>(c)].busy_fraction, 0.0);
    EXPECT_TRUE(profiles[static_cast<std::size_t>(c)].by_job.empty());
  }
}

TEST(ProfileTest, ContendedCoreShowsProjectionsArtifact) {
  // Two jobs sharing a core: wall-interval fractions overlap and sum past
  // 1.0 while the union stays at 1.0 — the paper's Figure 1 caveat.
  TraceRig rig;
  RuntimeJob& app = rig.make_job("app", {0});
  RuntimeJob& bg = rig.make_job("bg", {0});
  static_cast<void>(app.add_chare(std::make_unique<TickChare>(10, SimTime::millis(20))));
  static_cast<void>(bg.add_chare(std::make_unique<TickChare>(10, SimTime::millis(20))));
  app.start();
  bg.start();
  rig.sim.run();
  const SimTime end = std::max(app.finish_time(), bg.finish_time());
  const auto profiles =
      profile_cores(rig.tracer, 1, SimTime::zero(), end);
  const CoreProfile& p = profiles[0];
  EXPECT_NEAR(p.busy_fraction, 1.0, 0.02);
  EXPECT_GT(p.by_job.at("app") + p.by_job.at("bg"), 1.5);
}

TEST(ProfileTest, TableHasARowPerCoreAndAColumnPerJob) {
  TraceRig rig;
  RuntimeJob& app = rig.make_job("app", {0});
  RuntimeJob& bg = rig.make_job("bg", {1});
  static_cast<void>(app.add_chare(std::make_unique<TickChare>(2, SimTime::millis(5))));
  static_cast<void>(bg.add_chare(std::make_unique<TickChare>(2, SimTime::millis(5))));
  app.start();
  bg.start();
  rig.sim.run();
  const auto profiles = profile_cores(rig.tracer, 2, SimTime::zero(),
                                      SimTime::millis(100));
  const Table table = profile_table(profiles);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("app %"), std::string::npos);
  EXPECT_NE(os.str().find("bg %"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(ProfileTest, IterationDurationsFromJob) {
  TraceRig rig;
  RuntimeJob& job = rig.make_job("app", {0, 1});
  // TickChare does not report iterations; use a tiny local chare that does.
  class IterChare final : public Chare {
   public:
    void on_start() override { send(id(), 0, {}); }
    SimTime cost(const Message&) const override { return SimTime::millis(10); }
    void execute(const Message&) override {
      report_iteration(iter_);
      if (++iter_ >= 6) {
        finish();
        return;
      }
      send(id(), 0, {});
    }

   private:
    int iter_ = 0;
  };
  static_cast<void>(job.add_chare(std::make_unique<IterChare>()));
  static_cast<void>(job.add_chare(std::make_unique<IterChare>()));
  job.start();
  rig.sim.run();
  const SampleSet durations = iteration_durations(job);
  ASSERT_EQ(durations.size(), 6u);
  EXPECT_NEAR(durations.mean(), 0.010, 1e-3);
}

TEST(ProfileTest, TaskDurationHistogramShowsInterferenceTail) {
  TraceRig rig;
  RuntimeJob& app = rig.make_job("app", {0, 1});
  RuntimeJob& bg = rig.make_job("bg", {1});  // interferes with PE1 only
  static_cast<void>(app.add_chare(std::make_unique<TickChare>(10, SimTime::millis(10))));
  static_cast<void>(app.add_chare(std::make_unique<TickChare>(10, SimTime::millis(10))));
  static_cast<void>(bg.add_chare(std::make_unique<TickChare>(40, SimTime::millis(10))));
  app.start();
  bg.start();
  rig.sim.run();
  const Histogram h = task_duration_histogram(rig.tracer, "app", 4);
  EXPECT_EQ(h.count(), 20u);
  // Core 0's tasks take ~10 ms, core 1's ~20 ms (shared with bg): the
  // distribution is bimodal — the top bucket holds the stretched tasks
  // and a lower bucket the clean ones.
  EXPECT_GT(h.buckets().back(), 0);
  int populated = 0;
  for (const auto n : h.buckets())
    if (n > 0) ++populated;
  EXPECT_GE(populated, 2);
}

TEST(ProfileTest, WindowValidation) {
  TimelineTracer tracer;
  EXPECT_THROW(profile_cores(tracer, 0, SimTime::zero(), SimTime::seconds(1)),
               CheckFailure);
  EXPECT_THROW(profile_cores(tracer, 1, SimTime::seconds(1), SimTime::zero()),
               CheckFailure);
}

}  // namespace
}  // namespace cloudlb

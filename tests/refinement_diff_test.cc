// Differential harness for the refinement engine: the indexed
// O((T+M)·log P) production kernel (refinement.cc) must produce the same
// migration schedule as the retained naive O(donors·T·|underset|) reference
// (refinement_naive.cc) on randomized instances spanning machine sizes,
// overdecomposition ratios, background-load shapes, ε values, tie-break
// modes and migration caps. Beyond the acceptance bar (equal migration
// count, max load within 1e-9) the harness asserts bit-identical
// assignments — the two kernels share their floating-point setup, so any
// divergence is a selection-logic bug, not rounding.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "lb/refinement.h"
#include "util/rng.h"

namespace cloudlb {
namespace {

enum class BgShape { kNone, kUniform, kHotspot, kHeavyTail };

LbStats random_instance(Rng& rng, int pes, int chares, BgShape shape,
                        std::vector<double>* external) {
  LbStats stats;
  stats.pes.resize(static_cast<std::size_t>(pes));
  external->assign(static_cast<std::size_t>(pes), 0.0);
  for (int p = 0; p < pes; ++p) {
    auto& pe = stats.pes[static_cast<std::size_t>(p)];
    pe.pe = p;
    pe.core = p;
    pe.wall_sec = 100.0;
    switch (shape) {
      case BgShape::kNone:
        break;
      case BgShape::kUniform:
        (*external)[static_cast<std::size_t>(p)] = rng.uniform(0.0, 2.0);
        break;
      case BgShape::kHotspot:
        // A few PEs carry nearly all the interference (the paper's
        // co-located-VM scenario).
        if (rng.next_double() < 0.1)
          (*external)[static_cast<std::size_t>(p)] = rng.uniform(5.0, 20.0);
        break;
      case BgShape::kHeavyTail:
        if (rng.next_double() < 0.4)
          (*external)[static_cast<std::size_t>(p)] =
              rng.exponential(3.0);
        break;
    }
  }
  stats.chares.resize(static_cast<std::size_t>(chares));
  for (int c = 0; c < chares; ++c) {
    auto& ch = stats.chares[static_cast<std::size_t>(c)];
    ch.chare = c;
    // Skewed initial placement exercises long donor chains.
    const bool skew = rng.next_double() < 0.3;
    ch.pe = static_cast<PeId>(
        skew ? rng.uniform_int(0, std::max(1, pes / 4) - 1)
             : rng.uniform_int(0, pes - 1));
    // Mix of zero-cost, uniform and duplicate-cost tasks (duplicates stress
    // the tie-break paths).
    const double roll = rng.next_double();
    if (roll < 0.05) {
      ch.cpu_sec = 0.0;
    } else if (roll < 0.25) {
      ch.cpu_sec = 1.0;  // many exact ties
    } else {
      ch.cpu_sec = rng.uniform(0.01, 3.0);
    }
    ch.bytes = 1024;
    stats.pes[static_cast<std::size_t>(ch.pe)].task_cpu_sec += ch.cpu_sec;
  }
  for (int p = 0; p < pes; ++p) {
    auto& pe = stats.pes[static_cast<std::size_t>(p)];
    pe.core_idle_sec =
        std::max(0.0, pe.wall_sec - pe.task_cpu_sec -
                          (*external)[static_cast<std::size_t>(p)]);
  }
  return stats;
}

double max_load_of(const LbStats& stats, const std::vector<PeId>& assignment,
                   const std::vector<double>& external) {
  std::vector<double> load(external);
  for (auto& l : load) l = std::max(l, 0.0);
  for (std::size_t c = 0; c < assignment.size(); ++c)
    load[static_cast<std::size_t>(assignment[c])] += stats.chares[c].cpu_sec;
  return load.empty() ? 0.0 : *std::max_element(load.begin(), load.end());
}

// Shards the ≥1000-instance sweep so failures name a reproducible range
// and ctest can run shards in parallel.
class RefinementDifferentialTest : public ::testing::TestWithParam<int> {};

constexpr int kShards = 8;
constexpr int kInstancesPerShard = 128;  // 8 × 128 = 1024 instances total

TEST_P(RefinementDifferentialTest, IndexedEngineMatchesNaiveReference) {
  const int shard = GetParam();
  constexpr double kEpsilons[] = {0.0, 0.01, 0.05, 0.15, 0.3};

  for (int i = 0; i < kInstancesPerShard; ++i) {
    const int instance = shard * kInstancesPerShard + i;
    Rng rng{static_cast<std::uint64_t>(instance) * 2654435761ull + 17};

    const int pes = static_cast<int>(rng.uniform_int(1, 64));
    const int chares = static_cast<int>(rng.uniform_int(0, pes * 10));
    const auto shape = static_cast<BgShape>(instance % 4);

    std::vector<double> external;
    const LbStats stats =
        random_instance(rng, pes, chares, shape, &external);

    RefinementOptions options;
    options.epsilon_fraction =
        kEpsilons[static_cast<std::size_t>(instance) % std::size(kEpsilons)];
    options.tie_break = (instance / 4) % 2 == 0
                            ? RefinementTieBreak::kLowestId
                            : RefinementTieBreak::kHighestId;
    if (rng.next_double() < 0.25)
      options.max_migrations = static_cast<int>(rng.uniform_int(0, 16));

    const RefinementResult indexed =
        refine_assignment(stats, external, options);
    const RefinementResult naive =
        refine_assignment_naive(stats, external, options);

    ASSERT_EQ(indexed.migrations, naive.migrations)
        << "instance " << instance << " (P=" << pes << " T=" << chares
        << " eps=" << options.epsilon_fraction << ")";
    ASSERT_EQ(indexed.assignment, naive.assignment)
        << "instance " << instance;
    ASSERT_EQ(indexed.fully_balanced, naive.fully_balanced)
        << "instance " << instance;
    ASSERT_NEAR(indexed.max_load, naive.max_load, 1e-9)
        << "instance " << instance;

    // Both agree with an independent recomputation of the makespan.
    ASSERT_NEAR(indexed.max_load,
                max_load_of(stats, indexed.assignment, external), 1e-9)
        << "instance " << instance;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, RefinementDifferentialTest,
                         ::testing::Range(0, kShards));

// A handful of adversarial non-random instances the sweep is unlikely to
// hit: all load on one PE, all-equal costs, receivers exactly at the ε
// boundary, and a single-PE machine.
TEST(RefinementDifferentialTest, AdversarialEdgeInstances) {
  struct Case {
    int pes;
    std::vector<double> cpu;
    std::vector<PeId> assign;
    std::vector<double> external;
    double eps;
  };
  const std::vector<Case> cases = {
      {4, {1, 1, 1, 1, 1, 1, 1, 1}, {0, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0}, 0.05},
      {3, {2, 2, 2}, {0, 0, 0}, {0, 0, 6}, 0.0},
      {2, {1.05, 1.0}, {0, 1}, {0, 0}, 0.05},  // boundary: deviation == ε·T_avg
      {1, {5, 5}, {0, 0}, {0}, 0.05},          // single PE: nowhere to move
      {5, {}, {}, {1, 2, 3, 4, 5}, 0.1},       // no chares at all
  };
  for (std::size_t k = 0; k < cases.size(); ++k) {
    const Case& cs = cases[k];
    LbStats stats;
    stats.pes.resize(static_cast<std::size_t>(cs.pes));
    for (int p = 0; p < cs.pes; ++p) {
      stats.pes[static_cast<std::size_t>(p)].pe = p;
      stats.pes[static_cast<std::size_t>(p)].wall_sec = 100.0;
    }
    stats.chares.resize(cs.cpu.size());
    for (std::size_t c = 0; c < cs.cpu.size(); ++c) {
      stats.chares[c].chare = static_cast<ChareId>(c);
      stats.chares[c].pe = cs.assign[c];
      stats.chares[c].cpu_sec = cs.cpu[c];
    }
    RefinementOptions options;
    options.epsilon_fraction = cs.eps;
    const auto indexed = refine_assignment(stats, cs.external, options);
    const auto naive = refine_assignment_naive(stats, cs.external, options);
    EXPECT_EQ(indexed.migrations, naive.migrations) << "case " << k;
    EXPECT_EQ(indexed.assignment, naive.assignment) << "case " << k;
    EXPECT_NEAR(indexed.max_load, naive.max_load, 1e-9) << "case " << k;
  }
}

}  // namespace
}  // namespace cloudlb

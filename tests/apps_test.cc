#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "apps/app_factory.h"
#include "apps/jacobi2d.h"
#include "apps/mol3d.h"
#include "apps/stencil_base.h"
#include "apps/wave2d.h"
#include "lb/greedy_lb.h"
#include "lb/null_lb.h"
#include "machine/machine.h"
#include "runtime/job.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "vm/virtual_machine.h"

namespace cloudlb {
namespace {

/// Small layouts keep the host-side numerics cheap while still exercising
/// multi-block ghost exchange.
StencilLayout small_layout(int iterations = 12) {
  StencilLayout l;
  l.grid_x = 24;
  l.grid_y = 18;
  l.blocks_x = 4;
  l.blocks_y = 3;
  l.iterations = iterations;
  l.sec_per_point = 1e-6;
  return l;
}

struct AppRig {
  explicit AppRig(int cores, int lb_period = 0,
                  std::unique_ptr<LoadBalancer> lb = nullptr)
      : machine(sim, MachineConfig{.nodes = 2, .cores_per_node = 4, .core_speed_overrides = {}}) {
    std::vector<CoreId> ids(static_cast<std::size_t>(cores));
    std::iota(ids.begin(), ids.end(), 0);
    vm = std::make_unique<VirtualMachine>(machine, "app", ids);
    JobConfig config;
    config.lb_period = lb_period;
    if (lb == nullptr) lb = std::make_unique<NullLb>();
    job = std::make_unique<RuntimeJob>(sim, *vm, config, std::move(lb));
  }

  void run() {
    job->start();
    sim.run();
    ASSERT_TRUE(job->finished());
  }

  Simulator sim;
  Machine machine;
  std::unique_ptr<VirtualMachine> vm;
  std::unique_ptr<RuntimeJob> job;
};

/// Gathers the distributed stencil grid back into a row-major full grid.
template <typename ChareT>
std::vector<double> gather_grid(RuntimeJob& job, const StencilLayout& l) {
  std::vector<double> grid(static_cast<std::size_t>(l.grid_x) *
                           static_cast<std::size_t>(l.grid_y));
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    auto* chare = dynamic_cast<ChareT*>(&job.chare(static_cast<ChareId>(c)));
    CLB_CHECK(chare != nullptr);
    const std::vector<double> block = chare->block_values();
    for (int y = 0; y < chare->ny(); ++y)
      for (int x = 0; x < chare->nx(); ++x)
        grid[static_cast<std::size_t>(chare->y0() + y) *
                 static_cast<std::size_t>(l.grid_x) +
             static_cast<std::size_t>(chare->x0() + x)] =
            block[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(chare->nx()) +
                  static_cast<std::size_t>(x)];
  }
  return grid;
}

// ------------------------------------------------------------- StencilLayout

TEST(StencilLayoutTest, Validation) {
  StencilLayout l = small_layout();
  EXPECT_NO_THROW(l.validate());
  l.blocks_x = 0;
  EXPECT_THROW(l.validate(), CheckFailure);
  l = small_layout();
  l.grid_x = 2;
  EXPECT_THROW(l.validate(), CheckFailure);
  l = small_layout();
  l.iterations = 0;
  EXPECT_THROW(l.validate(), CheckFailure);
}

TEST(StencilLayoutTest, InitialValueDeterministic) {
  EXPECT_DOUBLE_EQ(stencil_initial_value(3, 4, 24, 18),
                   stencil_initial_value(3, 4, 24, 18));
  // Boundary of the sine mode is zero, bump is tiny far away.
  EXPECT_NEAR(stencil_initial_value(0, 0, 24, 18), 0.0, 0.05);
}

// ----------------------------------------------------------------- Jacobi2D

TEST(Jacobi2dTest, MatchesSerialReferenceBitwise) {
  // Synchronous Jacobi has order-independent arithmetic per point, so the
  // message-driven run must agree with the serial loop exactly — a strong
  // end-to-end check of ghost routing.
  Jacobi2dConfig config;
  config.layout = small_layout();
  AppRig rig{4};
  populate_jacobi2d(*rig.job, config);
  rig.run();
  const auto parallel = gather_grid<Jacobi2dChare>(*rig.job, config.layout);
  const auto serial = jacobi2d_reference(config);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]) << "at index " << i;
}

TEST(Jacobi2dTest, MatchesReferenceOnUnevenBlocks) {
  // Grid not divisible by blocks: 25×19 over 4×3 blocks.
  Jacobi2dConfig config;
  config.layout = small_layout();
  config.layout.grid_x = 25;
  config.layout.grid_y = 19;
  AppRig rig{3};
  populate_jacobi2d(*rig.job, config);
  rig.run();
  const auto parallel = gather_grid<Jacobi2dChare>(*rig.job, config.layout);
  const auto serial = jacobi2d_reference(config);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]);
}

TEST(Jacobi2dTest, ResultUnchangedByMigration) {
  // Aggressive greedy balancing migrates blocks mid-run; the numerics must
  // not notice.
  Jacobi2dConfig config;
  config.layout = small_layout(16);
  AppRig rig{4, 4, std::make_unique<GreedyLb>()};
  populate_jacobi2d(*rig.job, config);
  rig.run();
  EXPECT_GT(rig.job->counters().lb_steps, 0);
  const auto parallel = gather_grid<Jacobi2dChare>(*rig.job, config.layout);
  const auto serial = jacobi2d_reference(config);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]);
}

TEST(Jacobi2dTest, BoundaryHeldFixed) {
  Jacobi2dConfig config;
  config.layout = small_layout();
  const auto result = jacobi2d_reference(config);
  const int gx = config.layout.grid_x;
  for (int x = 0; x < gx; ++x)
    EXPECT_DOUBLE_EQ(result[static_cast<std::size_t>(x)],
                     stencil_initial_value(x, 0, gx, config.layout.grid_y));
}

TEST(Jacobi2dTest, ConvergesTowardHarmonic) {
  // The max-norm of the interior decreases monotonically under averaging
  // with a fixed boundary... over a long horizon it must shrink noticeably.
  Jacobi2dConfig few, many;
  few.layout = small_layout(2);
  many.layout = small_layout(200);
  auto interior_max = [&](const std::vector<double>& g, const StencilLayout& l) {
    double mx = 0.0;
    for (int y = 1; y < l.grid_y - 1; ++y)
      for (int x = 1; x < l.grid_x - 1; ++x)
        mx = std::max(mx, std::abs(g[static_cast<std::size_t>(y) *
                                         static_cast<std::size_t>(l.grid_x) +
                                     static_cast<std::size_t>(x)]));
    return mx;
  };
  EXPECT_LT(interior_max(jacobi2d_reference(many), many.layout),
            0.8 * interior_max(jacobi2d_reference(few), few.layout));
}

TEST(Jacobi2dTest, TaskCostsScaleWithBlockArea) {
  Jacobi2dConfig config;
  config.layout = small_layout(4);
  AppRig rig{2};
  populate_jacobi2d(*rig.job, config);
  rig.job->start();
  rig.sim.run();
  // Total CPU ≈ grid points × iterations × sec_per_point (+ ghost costs).
  const double expected = 24.0 * 18.0 * 4 * 1e-6;
  EXPECT_NEAR(rig.job->cpu_consumed().to_seconds(), expected,
              0.2 * expected);
}

TEST(Jacobi2dTest, ResidualConvergenceStopsEarly) {
  Jacobi2dConfig config;
  config.layout = small_layout(500);
  config.layout.residual_period = 4;
  config.layout.residual_tolerance = 2.0;  // generous: converges quickly
  AppRig rig{4};
  populate_jacobi2d(*rig.job, config);
  rig.run();
  auto* probe = dynamic_cast<Jacobi2dChare*>(&rig.job->chare(0));
  ASSERT_NE(probe, nullptr);
  const int sweeps = probe->iteration();
  EXPECT_LT(sweeps, 500);
  EXPECT_GT(sweeps, 0);
  // Every chare agrees on the stopping iteration (the reduction is global).
  for (std::size_t c = 0; c < rig.job->num_chares(); ++c) {
    auto* chare = dynamic_cast<Jacobi2dChare*>(
        &rig.job->chare(static_cast<ChareId>(c)));
    EXPECT_EQ(chare->iteration(), sweeps);
  }
  // And the result equals the serial reference run for the same count.
  Jacobi2dConfig truncated = config;
  truncated.layout.iterations = sweeps;
  const auto serial = jacobi2d_reference(truncated);
  const auto parallel = gather_grid<Jacobi2dChare>(*rig.job, config.layout);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]);
}

TEST(Jacobi2dTest, ResidualCheckingDoesNotPerturbNumerics) {
  // With an unreachable tolerance the run goes the full distance and must
  // match the plain fixed-iteration result bitwise.
  Jacobi2dConfig checked;
  checked.layout = small_layout(12);
  checked.layout.residual_period = 3;
  checked.layout.residual_tolerance = 1e-300;
  AppRig rig{4};
  populate_jacobi2d(*rig.job, checked);
  rig.run();
  Jacobi2dConfig plain;
  plain.layout = small_layout(12);
  const auto serial = jacobi2d_reference(plain);
  const auto parallel = gather_grid<Jacobi2dChare>(*rig.job, checked.layout);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]);
}

TEST(Jacobi2dTest, ResidualConvergenceSurvivesMigrations) {
  Jacobi2dConfig config;
  config.layout = small_layout(500);
  config.layout.residual_period = 5;
  config.layout.residual_tolerance = 2.0;
  AppRig rig{4, 4, std::make_unique<GreedyLb>()};
  populate_jacobi2d(*rig.job, config);
  rig.run();
  EXPECT_GT(rig.job->counters().migrations, 0);
  auto* probe = dynamic_cast<Jacobi2dChare*>(&rig.job->chare(0));
  EXPECT_LT(probe->iteration(), 500);
}

// ------------------------------------------------------------------- Wave2D

TEST(Wave2dTest, MatchesSerialReferenceBitwise) {
  Wave2dConfig config;
  config.layout = small_layout();
  AppRig rig{4};
  populate_wave2d(*rig.job, config);
  rig.run();
  const auto parallel = gather_grid<Wave2dChare>(*rig.job, config.layout);
  const auto serial = wave2d_reference(config);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]) << "at index " << i;
}

TEST(Wave2dTest, MigrationPreservesBothTimeLevels) {
  Wave2dConfig config;
  config.layout = small_layout(16);
  AppRig rig{4, 4, std::make_unique<GreedyLb>()};
  populate_wave2d(*rig.job, config);
  rig.run();
  EXPECT_GT(rig.job->counters().migrations, 0);
  const auto parallel = gather_grid<Wave2dChare>(*rig.job, config.layout);
  const auto serial = wave2d_reference(config);
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(parallel[i], serial[i]);
}

TEST(Wave2dTest, EnergyStaysBounded) {
  // CFL-stable scheme: amplitudes must not blow up.
  Wave2dConfig config;
  config.layout = small_layout(300);
  const auto grid = wave2d_reference(config);
  double mx = 0.0;
  for (const double v : grid) mx = std::max(mx, std::abs(v));
  EXPECT_LT(mx, 10.0);
  EXPECT_GT(mx, 1e-6);  // and the membrane is still moving
}

TEST(Wave2dTest, CourantValidation) {
  Wave2dConfig config;
  config.layout = small_layout();
  config.courant = 0.9;  // unstable for 2D
  AppRig rig{2};
  EXPECT_THROW(populate_wave2d(*rig.job, config), CheckFailure);
}

TEST(Wave2dTest, StateBytesCoverTwoTimeLevels) {
  Wave2dConfig wconfig;
  wconfig.layout = small_layout();
  Jacobi2dConfig jconfig;
  jconfig.layout = small_layout();
  AppRig rig{2};
  populate_wave2d(*rig.job, wconfig);
  AppRig rig2{2};
  populate_jacobi2d(*rig2.job, jconfig);
  EXPECT_GT(rig.job->chare(0).footprint_bytes(),
            rig2.job->chare(0).footprint_bytes());
}

// ------------------------------------------------------------------- Mol3D

Mol3dConfig small_mol(int iterations = 8) {
  Mol3dConfig config;
  config.cells_x = 4;
  config.cells_y = 3;
  config.cells_z = 3;
  config.num_particles = 400;
  config.iterations = iterations;
  config.sec_per_pair = 1e-7;
  return config;
}

TEST(Mol3dTest, ConfigValidation) {
  Mol3dConfig config = small_mol();
  EXPECT_NO_THROW(config.validate());
  config.cells_x = 2;
  EXPECT_THROW(config.validate(), CheckFailure);
  config = small_mol();
  config.cutoff = 1.5;
  EXPECT_THROW(config.validate(), CheckFailure);
}

TEST(Mol3dTest, InitialParticlesDeterministicAndInBox) {
  const Mol3dConfig config = small_mol();
  const auto a = mol3d_initial_particles(config);
  const auto b = mol3d_initial_particles(config);
  ASSERT_EQ(a.size(), 400u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, config.cells_x);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LT(a[i].y, config.cells_y);
    EXPECT_GE(a[i].z, 0.0);
    EXPECT_LT(a[i].z, config.cells_z);
  }
}

TEST(Mol3dTest, ClusteringCreatesImbalance) {
  Mol3dConfig config = small_mol();
  config.cluster_fraction = 0.8;
  config.num_particles = 2000;
  const auto particles = mol3d_initial_particles(config);
  std::vector<int> counts(static_cast<std::size_t>(config.num_cells()), 0);
  for (const auto& p : particles) {
    const int cx = std::min(static_cast<int>(p.x), config.cells_x - 1);
    const int cy = std::min(static_cast<int>(p.y), config.cells_y - 1);
    const int cz = std::min(static_cast<int>(p.z), config.cells_z - 1);
    ++counts[static_cast<std::size_t>(
        (cz * config.cells_y + cy) * config.cells_x + cx)];
  }
  const int mx = *std::max_element(counts.begin(), counts.end());
  const double mean =
      static_cast<double>(config.num_particles) / config.num_cells();
  EXPECT_GT(mx, 1.5 * mean);  // clusters concentrate load
}

TEST(Mol3dTest, ParticleCountConservedThroughRun) {
  const Mol3dConfig config = small_mol(10);
  AppRig rig{4};
  populate_mol3d(*rig.job, config);
  rig.run();
  std::size_t total = 0;
  for (std::size_t c = 0; c < rig.job->num_chares(); ++c) {
    auto* cell =
        dynamic_cast<Mol3dChare*>(&rig.job->chare(static_cast<ChareId>(c)));
    ASSERT_NE(cell, nullptr);
    total += cell->particles().size();
    EXPECT_EQ(cell->iteration(), 10);
  }
  EXPECT_EQ(total, 400u);
}

TEST(Mol3dTest, ParticlesStayInPeriodicBox) {
  const Mol3dConfig config = small_mol(10);
  AppRig rig{4};
  populate_mol3d(*rig.job, config);
  rig.run();
  for (std::size_t c = 0; c < rig.job->num_chares(); ++c) {
    auto* cell =
        dynamic_cast<Mol3dChare*>(&rig.job->chare(static_cast<ChareId>(c)));
    for (const Particle& p : cell->particles()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LT(p.x, config.cells_x);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LT(p.y, config.cells_y);
      EXPECT_GE(p.z, 0.0);
      EXPECT_LT(p.z, config.cells_z);
    }
  }
}

TEST(Mol3dTest, DeterministicAcrossRuns) {
  auto fingerprint = [] {
    const Mol3dConfig config = small_mol(6);
    AppRig rig{3};
    populate_mol3d(*rig.job, config);
    rig.job->start();
    rig.sim.run();
    double sum = 0.0;
    for (std::size_t c = 0; c < rig.job->num_chares(); ++c) {
      auto* cell =
          dynamic_cast<Mol3dChare*>(&rig.job->chare(static_cast<ChareId>(c)));
      for (const Particle& p : cell->particles())
        sum += p.x + 2 * p.y + 3 * p.z + p.vx;
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(fingerprint(), fingerprint());
}

TEST(Mol3dTest, SurvivesMigrations) {
  const Mol3dConfig config = small_mol(12);
  AppRig rig{4, 4, std::make_unique<GreedyLb>()};
  populate_mol3d(*rig.job, config);
  rig.run();
  EXPECT_GT(rig.job->counters().migrations, 0);
  std::size_t total = 0;
  for (std::size_t c = 0; c < rig.job->num_chares(); ++c) {
    auto* cell =
        dynamic_cast<Mol3dChare*>(&rig.job->chare(static_cast<ChareId>(c)));
    total += cell->particles().size();
  }
  EXPECT_EQ(total, 400u);
}

TEST(Mol3dTest, CostScalesWithParticleCount) {
  Mol3dConfig small = small_mol(4);
  Mol3dConfig big = small_mol(4);
  big.num_particles = 800;
  auto cpu = [](const Mol3dConfig& config) {
    AppRig rig{4};
    populate_mol3d(*rig.job, config);
    rig.job->start();
    rig.sim.run();
    return rig.job->cpu_consumed().to_seconds();
  };
  // Pairwise work grows superlinearly in density.
  EXPECT_GT(cpu(big), 2.5 * cpu(small));
}

// ------------------------------------------------------------- app factory

TEST(AppFactoryTest, PopulatesEachApp) {
  for (const auto& name : app_names()) {
    AppRig rig{4};
    AppSpec spec;
    spec.name = name;
    spec.iterations = 2;
    populate_app(*rig.job, spec);
    EXPECT_GE(rig.job->num_chares(), 4u) << name;
  }
}

TEST(AppFactoryTest, UnknownAppThrows) {
  AppRig rig{1};
  AppSpec spec;
  spec.name = "nbody-gpu";
  EXPECT_THROW(populate_app(*rig.job, spec), CheckFailure);
}

TEST(AppFactoryTest, WorkScaleMultipliesCost) {
  auto cpu = [](double scale) {
    AppRig rig{4};
    AppSpec spec;
    spec.name = "jacobi2d";
    spec.iterations = 2;
    spec.work_scale = scale;
    populate_app(*rig.job, spec);
    rig.job->start();
    rig.sim.run();
    return rig.job->cpu_consumed().to_seconds();
  };
  EXPECT_NEAR(cpu(2.0) / cpu(1.0), 2.0, 0.1);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "util/check.h"

namespace cloudlb {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired;
  sim.schedule_at(SimTime::seconds(1), [&] {
    sim.schedule_after(SimTime::millis(500), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::millis(1500));
}

TEST(SimulatorTest, ClockVisibleDuringCallback) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::micros(42), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::micros(42));
}

TEST(SimulatorTest, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::millis(1), [] {}), CheckFailure);
  EXPECT_THROW(sim.schedule_after(SimTime::millis(-1), [] {}), CheckFailure);
}

TEST(SimulatorTest, NullCallbackRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(SimTime::zero(), nullptr), CheckFailure);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h =
      sim.schedule_at(SimTime::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelIsIdempotent) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(SimTime::millis(1), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(SimTime::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime::millis(10), [&] { fired.push_back(10); });
  sim.schedule_at(SimTime::millis(20), [&] { fired.push_back(20); });
  sim.schedule_at(SimTime::millis(30), [&] { fired.push_back(30); });
  sim.run_until(SimTime::millis(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(SimulatorTest, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventHandle h = sim.schedule_at(SimTime::millis(1), [&] { fired = true; });
  sim.schedule_at(SimTime::millis(5), [] {});
  EXPECT_TRUE(sim.cancel(h));
  sim.run_until(SimTime::millis(2));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), SimTime::millis(2));
}

TEST(SimulatorTest, EventsScheduledFromCallbackRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(SimTime::micros(1), chain);
  };
  sim.schedule_after(SimTime::zero(), chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), SimTime::micros(99));
}

TEST(SimulatorTest, ZeroDelaySelfChainingTerminates) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1'000) sim.schedule_after(SimTime::zero(), chain);
  };
  sim.schedule_after(SimTime::zero(), chain);
  sim.run();
  EXPECT_EQ(count, 1'000);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SimulatorTest, ExecutedCounterCountsFiredOnly) {
  Simulator sim;
  sim.schedule_at(SimTime::millis(1), [] {});
  const EventHandle h = sim.schedule_at(SimTime::millis(2), [] {});
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, PendingTracksOutstanding) {
  Simulator sim;
  sim.schedule_at(SimTime::millis(1), [] {});
  const EventHandle h = sim.schedule_at(SimTime::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RepeatedScheduleCancelKeepsQueueBounded) {
  // Regression: cancel() used to leave the QueueEntry in the priority queue
  // forever, so a periodic LB re-arming a timer (schedule, cancel, schedule
  // again) grew the queue without bound. Stale entries are now compacted
  // once they outnumber the live ones.
  Simulator sim;
  EventHandle armed;
  int fired = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (armed.valid()) {
      EXPECT_TRUE(sim.cancel(armed));
    }
    armed = sim.schedule_at(SimTime::seconds(1000) + SimTime::millis(i),
                            [&fired] { ++fired; });
    ASSERT_LE(sim.queue_size(), 512u) << "at cycle " << i;
    ASSERT_EQ(sim.pending(), 1u);
  }
  sim.run();
  EXPECT_EQ(fired, 1);  // only the last armed timer survives
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(SimulatorTest, CompactionPreservesLiveEventsAndOrder) {
  // Interleave long-lived events with heavy schedule/cancel churn; every
  // live event must still fire, in time order, despite compaction passes.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 200; ++i)
    sim.schedule_at(SimTime::millis(10 * (i + 1)),
                    [&order, i] { order.push_back(i); });
  for (int i = 0; i < 10'000; ++i)
    ASSERT_TRUE(sim.cancel(sim.schedule_at(SimTime::seconds(100), [] {})));
  EXPECT_LE(sim.queue_size(), 1024u);
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, RunUntilInterleavedWithScheduleAtNow) {
  // Regression: run_until() used to set now_ = t unconditionally after the
  // loop; interleaving it with schedule_at(now()) must never let the clock
  // pass an event that has not executed yet.
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime::millis(10), [&] {
    fired.push_back(10);
    // Same-time follow-up scheduled while run_until is draining t=10ms.
    sim.schedule_at(sim.now(), [&] { fired.push_back(11); });
  });
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(fired, (std::vector<int>{10, 11}));
  EXPECT_EQ(sim.now(), SimTime::millis(10));
  EXPECT_EQ(sim.pending(), 0u);

  // A later boundary with a pending event exactly on it behaves the same.
  sim.schedule_at(SimTime::millis(20), [&] {
    fired.push_back(20);
    sim.schedule_after(SimTime::zero(), [&] { fired.push_back(21); });
  });
  sim.run_until(SimTime::millis(25));
  EXPECT_EQ(fired, (std::vector<int>{10, 11, 20, 21}));
  EXPECT_EQ(sim.now(), SimTime::millis(25));
  // Scheduling at the post-run_until clock still works (not "in the past").
  bool tail = false;
  sim.schedule_at(sim.now(), [&] { tail = true; });
  sim.run();
  EXPECT_TRUE(tail);
}

TEST(SimulatorTest, StaleHandleOnRecycledSlotIsRejected) {
  // A fired event's slot goes back on the free list; the very next
  // schedule reuses it at a bumped generation. Cancelling the stale handle
  // must fail and must NOT cancel the new occupant.
  Simulator sim;
  bool first = false;
  const EventHandle stale =
      sim.schedule_at(SimTime::millis(1), [&] { first = true; });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_EQ(sim.slot_count(), 1u);  // arena has exactly one slot to recycle

  bool second = false;
  const EventHandle fresh =
      sim.schedule_at(SimTime::millis(2), [&] { second = true; });
  EXPECT_EQ(sim.slot_count(), 1u);  // same slot, new generation
  EXPECT_FALSE(sim.cancel(stale));  // generation mismatch: rejected
  EXPECT_EQ(sim.pending(), 1u);     // the new occupant is untouched
  sim.run();
  EXPECT_TRUE(second);
  EXPECT_FALSE(sim.cancel(fresh));  // fired; its handle is stale too now
}

TEST(SimulatorTest, CancelledSlotRecycledHandleIsRejected) {
  // Same recycling scenario, but the slot is freed via cancel() rather
  // than firing.
  Simulator sim;
  const EventHandle a = sim.schedule_at(SimTime::millis(1), [] {});
  EXPECT_TRUE(sim.cancel(a));
  bool fired = false;
  sim.schedule_at(SimTime::millis(1), [&] { fired = true; });
  EXPECT_EQ(sim.slot_count(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // stale handle on the recycled slot
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, TraceHookSeesExecutedEventsInOrder) {
  Simulator sim;
  std::vector<std::pair<SimTime, std::uint64_t>> trace;
  sim.set_trace_hook(
      [&](SimTime t, std::uint64_t seq) { trace.emplace_back(t, seq); });
  sim.schedule_at(SimTime::millis(2), [] {});
  const EventHandle h = sim.schedule_at(SimTime::millis(1), [] {});
  sim.schedule_at(SimTime::millis(1), [] {});
  EXPECT_TRUE(sim.cancel(h));  // cancelled events never reach the hook
  sim.run();
  ASSERT_EQ(trace.size(), 2u);
  // Sequence numbers record SCHEDULING order (1-based), so the 1ms
  // survivor is seq 3 (the cancelled one was seq 2) and the 2ms event,
  // scheduled first, is seq 1.
  EXPECT_EQ(trace[0], std::make_pair(SimTime::millis(1), std::uint64_t{3}));
  EXPECT_EQ(trace[1], std::make_pair(SimTime::millis(2), std::uint64_t{1}));
}

TEST(SimulatorTest, ManyEventsStressDeterministic) {
  auto run_once = [] {
    Simulator sim;
    std::uint64_t checksum = 0;
    for (int i = 0; i < 5'000; ++i) {
      // Pseudo-random but fixed times.
      const auto t = SimTime::nanos((i * 2654435761u) % 1'000'000);
      sim.schedule_at(t, [&checksum, i] { checksum = checksum * 31 + static_cast<std::uint64_t>(i); });
    }
    sim.run();
    return checksum;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cloudlb

// Allocation audit for the simulator hot path. The slot arena plus the
// small-buffer-optimized callback storage promise that a warm simulator
// performs ZERO heap allocations per schedule→fire cycle as long as the
// capture fits Simulator::kInlineCallbackBytes. This binary replaces the
// global allocator with a counting shim and pins that promise.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <new>

#include "sim/simulator.h"
#include "util/thread_pool.h"
#include "util/validate.h"

namespace {

std::atomic<std::size_t> g_news{0};
std::atomic<bool> g_armed{false};

void probe_arm() {
  g_news.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

std::size_t probe_disarm() {
  g_armed.store(false, std::memory_order_relaxed);
  return g_news.load(std::memory_order_relaxed);
}

}  // namespace

// Replacement global allocator: malloc-backed, counts while armed. Both
// new forms and all delete forms are replaced together, so every pointer
// freed here came from the std::malloc above — GCC cannot see that pairing
// across the replaced operators, hence the diagnostic suppression.
void* operator new(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace cloudlb {
namespace {

constexpr int kBatch = 256;

void warm_up(Simulator& sim) {
  // Grow the slot arena and the event heap to their steady-state
  // capacity so the measured region never resizes a vector.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kBatch; ++i)
      sim.schedule_after(SimTime::nanos(i + 1), [] {});
    sim.run();
  }
}

TEST(SimAllocTest, WarmScheduleFireLoopIsAllocationFree) {
  Simulator sim;
  warm_up(sim);

  std::uint64_t fired = 0;
  probe_arm();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kBatch; ++i)
      sim.schedule_after(SimTime::nanos(i + 1), [&fired] { ++fired; });
    while (sim.step()) {
    }
  }
  const std::size_t allocs = probe_disarm();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(fired, 50u * kBatch);
}

TEST(SimAllocTest, ReservePresizesTheColdEngine) {
  // reserve(events, slots) replaces the warm-up loop: a *cold* engine
  // that was presized schedules its first full batch without touching
  // the allocator. This is the hint run_scenario_with() issues at setup.
  Simulator sim;
  sim.reserve(kBatch, kBatch);

  std::uint64_t fired = 0;
  probe_arm();
  for (int i = 0; i < kBatch; ++i)
    sim.schedule_after(SimTime::nanos(i + 1), [&fired] { ++fired; });
  while (sim.step()) {
  }
  const std::size_t allocs = probe_disarm();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kBatch));
}

TEST(SimAllocTest, FatInlineCaptureStaysAllocationFree) {
  // The widest capture the runtime schedules is ~56 bytes (message
  // delivery); a same-size synthetic capture must still ride inline.
  struct Payload {
    std::uint64_t words[6];  // 48 bytes + the 8-byte sink reference = 56
  };
  Simulator sim;
  warm_up(sim);

  std::uint64_t sink = 0;
  probe_arm();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      Payload p{};
      p.words[0] = static_cast<std::uint64_t>(i);
      sim.schedule_after(SimTime::nanos(i + 1),
                         [&sink, p] { sink += p.words[0]; });
    }
    while (sim.step()) {
    }
  }
  const std::size_t allocs = probe_disarm();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(sink, 50u * (kBatch * (kBatch - 1) / 2));
}

TEST(SimAllocTest, ScheduleCancelChurnIsAllocationFree) {
  // The zero-allocation promise covers the production configuration:
  // compaction auto-runs validate_integrity() when validation is on, and
  // the validator's O(slots) scratch is an accepted cost of validated
  // builds, not a warm-path regression.
  ValidationScope validation{false};
  Simulator sim;
  warm_up(sim);

  probe_arm();
  EventHandle armed;
  for (int i = 0; i < 10'000; ++i) {
    // Inside the allocation-probe window: discard instead of asserting
    // so the check machinery cannot perturb the count being measured.
    if (armed.valid()) static_cast<void>(sim.cancel(armed));
    armed = sim.schedule_after(SimTime::seconds(100), [] {});
  }
  const std::size_t allocs = probe_disarm();
  // Compaction passes shrink in place (std::erase_if) and the freed slot
  // is recycled immediately, so re-arming a timer never allocates.
  EXPECT_EQ(allocs, 0u);
  EXPECT_TRUE(sim.cancel(armed));
  sim.run();
}

TEST(SimAllocTest, OverBudgetCaptureFallsBackToHeap) {
  // Sanity check that the probe actually observes allocations: a capture
  // wider than Simulator::kInlineCallbackBytes must take the heap path.
  struct Huge {
    std::byte bytes[Simulator::kInlineCallbackBytes + 16];
  };
  static_assert(!Simulator::Callback::fits_inline<Huge>());
  Simulator sim;
  warm_up(sim);

  Huge huge{};
  probe_arm();
  sim.schedule_after(SimTime::nanos(1), [huge] { (void)huge; });
  const std::size_t allocs = probe_disarm();
  EXPECT_GE(allocs, 1u);
  sim.run();
}

TEST(SimAllocTest, WorkerTeamRoundsAreAllocationFree) {
  // Regression pin for the run_round signature change: the per-window
  // worker closure is borrowed through a FunctionRef, never type-erased
  // into an owning std::function (which heap-allocates for captures past
  // its small-buffer size). A warm team must run any number of rounds
  // with an arbitrarily wide capture without touching the allocator.
  WorkerTeam team{3};
  struct Wide {
    std::uint64_t lanes[16] = {};  // 128 bytes: past any SBO budget
  } wide;
  // One unmeasured round lets the OS finish any lazy thread setup.
  team.run_round([&wide](int worker) {
    wide.lanes[static_cast<std::size_t>(worker)] += 1;
  });

  probe_arm();
  for (int round = 0; round < 50; ++round) {
    team.run_round([&wide](int worker) {
      wide.lanes[static_cast<std::size_t>(worker)] += 1;
    });
  }
  const std::size_t allocs = probe_disarm();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(wide.lanes[0], 51u);
  EXPECT_EQ(wide.lanes[1], 51u);
  EXPECT_EQ(wide.lanes[2], 51u);
}

}  // namespace
}  // namespace cloudlb

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/function_ref.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/small_function.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace cloudlb {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_TRUE(SimTime{}.is_zero());
}

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::nanos(5).ns(), 5);
  EXPECT_EQ(SimTime::micros(5).ns(), 5'000);
  EXPECT_EQ(SimTime::millis(5).ns(), 5'000'000);
  EXPECT_EQ(SimTime::seconds(5).ns(), 5'000'000'000);
}

TEST(SimTimeTest, FromSecondsRounds) {
  EXPECT_EQ(SimTime::from_seconds(1.5e-9).ns(), 2);
  EXPECT_EQ(SimTime::from_seconds(1.4e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(-1.5e-9).ns(), -2);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::millis(3);
  const SimTime b = SimTime::millis(1);
  EXPECT_EQ((a + b).ns(), 4'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_EQ((a * 3).ns(), 9'000'000);
  EXPECT_EQ((3 * a).ns(), 9'000'000);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
}

TEST(SimTimeTest, ScaleByDouble) {
  EXPECT_EQ((SimTime::seconds(2) * 0.25).ns(), 500'000'000);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::seconds(1);
  t += SimTime::millis(500);
  EXPECT_EQ(t.ns(), 1'500'000'000);
  t -= SimTime::seconds(2);
  EXPECT_TRUE(t.is_negative());
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_EQ(SimTime::micros(1000), SimTime::millis(1));
}

TEST(SimTimeTest, ToSecondsRoundTrip) {
  const SimTime t = SimTime::from_seconds(123.456789);
  EXPECT_NEAR(t.to_seconds(), 123.456789, 1e-9);
  EXPECT_NEAR(t.to_millis(), 123456.789, 1e-6);
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::zero().to_string(), "0s");
  EXPECT_EQ(SimTime::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(SimTime::millis(12).to_string(), "12.000ms");
  EXPECT_EQ(SimTime::micros(7).to_string(), "7.000us");
  EXPECT_EQ(SimTime::nanos(3).to_string(), "3ns");
}

// ------------------------------------------------------------------ check

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(CLB_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrows) {
  EXPECT_THROW(CLB_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    CLB_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng{9};
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng{4};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng{4};
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng{4};
  EXPECT_THROW(rng.uniform_int(2, 1), CheckFailure);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng{11};
  StatAccumulator acc;
  for (int i = 0; i < 50'000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng{12};
  StatAccumulator acc;
  for (int i = 0; i < 50'000; ++i) acc.add(rng.exponential(3.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
  EXPECT_GE(acc.min(), 0.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a{77};
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ------------------------------------------------------------------ stats

TEST(StatAccumulatorTest, EmptyDefaults) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_THROW(acc.min(), CheckFailure);
}

TEST(StatAccumulatorTest, MeanVarianceExtrema) {
  StatAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulatorTest, MergeMatchesCombinedStream) {
  StatAccumulator all, left, right;
  Rng rng{5};
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatAccumulatorTest, MergeWithEmptyIsIdentity) {
  StatAccumulator acc, empty;
  acc.add(3.0);
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 1u);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSetTest, SingleValue) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(SampleSetTest, AddAfterQueryResortsLazily) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(LoadImbalanceTest, BalancedIsZero) {
  EXPECT_DOUBLE_EQ(load_imbalance({2.0, 2.0, 2.0}), 0.0);
}

TEST(LoadImbalanceTest, WorstCoreTwiceMeanIsOne) {
  EXPECT_DOUBLE_EQ(load_imbalance({4.0, 1.0, 1.0}), 1.0);
}

TEST(LoadImbalanceTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(load_imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance({0.0, 0.0}), 0.0);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BucketsValuesLinearly) {
  Histogram h{0.0, 10.0, 5};
  for (const double v : {0.5, 1.5, 2.5, 2.9, 9.9}) h.add(v);
  EXPECT_EQ(h.buckets(), (std::vector<std::int64_t>{2, 2, 0, 0, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 0);
  EXPECT_EQ(h.overflow(), 0);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h{0.0, 1.0, 2};
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 1);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h{2.0, 12.0, 5};
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 12.0);
}

TEST(HistogramTest, PrintRendersBars) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  std::ostringstream os;
  h.print(os, "s", 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
}

// ------------------------------------------------------------------ table

TEST(TableTest, AlignsColumns) {
  Table t({"a", "longer"});
  t.add_row({"xxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a      longer"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  1"), std::string::npos);
}

TEST(TableTest, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

// --------------------------------------------------------- SmallFunction

TEST(SmallFunctionTest, InvokesAndReportsInline) {
  SmallFunction<int(int), 32> f = [](int x) { return x + 1; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(41), 42);
}

TEST(SmallFunctionTest, EmptyIsFalseAndInline) {
  SmallFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());  // no storage at all
  EXPECT_TRUE(f == nullptr);
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunctionTest, OverBudgetCaptureGoesToHeapButStillWorks) {
  struct Big {
    std::uint64_t words[12];  // 96 bytes > the 32-byte budget below
  };
  Big big{};
  big.words[0] = 7;
  SmallFunction<std::uint64_t(), 32> f = [big] { return big.words[0]; };
  static_assert(!SmallFunction<std::uint64_t(), 32>::fits_inline<Big>());
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 7u);
}

TEST(SmallFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  SmallFunction<void()> a = [&calls] { ++calls; };
  SmallFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(calls, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunctionTest, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(5);
  SmallFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 5);
  SmallFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 5);
}

TEST(SmallFunctionTest, DestroysCaptureOnReset) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> n;
    ~Probe() {
      if (n) ++*n;
    }
    Probe(std::shared_ptr<int> p) : n{std::move(p)} {}
    Probe(Probe&&) = default;
    void operator()() const {}
  };
  {
    SmallFunction<void()> f = Probe{counter};
    EXPECT_EQ(*counter, 0);
    f.reset();
    EXPECT_EQ(*counter, 1);
  }
  EXPECT_EQ(*counter, 1);  // reset() already destroyed; dtor must not double
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), 4,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  for (const int jobs : {1, 2, 7}) {
    const std::vector<std::size_t> out = parallel_map<std::size_t>(
        257, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ZeroItemsIsFine) {
  parallel_for(0, 8, [](std::size_t) { FAIL(); });
  EXPECT_TRUE(parallel_map<int>(0, 8, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error{"boom"};
                            }),
               std::runtime_error);
}

TEST(ThreadPoolTest, CheckFailureDuringParallelForJoinsCleanly) {
  // Shutdown-hardening regression (run under TSan in CI): a CLB_CHECK
  // tripping mid-task must unwind through the RAII pool — every worker
  // joined, the first failure rethrown, no thread left to call
  // std::terminate. Repeated so TSan sees many interleavings.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> visited{0};
    EXPECT_THROW(parallel_for(512, 8,
                              [&](std::size_t i) {
                                visited.fetch_add(1,
                                                  std::memory_order_relaxed);
                                CLB_CHECK_MSG(i != 129, "injected failure");
                              },
                              /*chunk=*/1),
                 CheckFailure);
    // The failing index ran, and the early-exit latch kept the pool from
    // visiting everything after the failure was recorded.
    EXPECT_GE(visited.load(), 1);
  }
}

TEST(ThreadPoolTest, ConcurrentParallelMapFromTwoCallers) {
  // Two overlapping parallel_map invocations (the ParallelGrid pattern:
  // nested parallelism across scenario fans) must not share any state —
  // each call owns its threads, cursor, and error latch. TSan verifies
  // the absence of data races between the two pools.
  ThreadPool outer;
  std::vector<int> a, b;
  outer.spawn([&a] {
    a = parallel_map<int>(999, 4,
                          [](std::size_t i) { return static_cast<int>(i); });
  });
  outer.spawn([&b] {
    b = parallel_map<int>(999, 4,
                          [](std::size_t i) { return static_cast<int>(i) * 2; });
  });
  outer.join_all();
  ASSERT_EQ(a.size(), 999u);
  ASSERT_EQ(b.size(), 999u);
  for (int i = 0; i < 999; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(b[static_cast<std::size_t>(i)], i * 2);
  }
}

TEST(ThreadPoolTest, PoolDestructorJoinsUnjoinedThreads) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool;
    for (int i = 0; i < 4; ++i)
      pool.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(pool.size(), 4u);
    // No explicit join_all(): the destructor must reap all four.
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, NonPositiveJobsUsesHardware) {
  EXPECT_GE(hardware_jobs(), 1);
  const std::vector<int> out =
      parallel_map<int>(16, 0, [](std::size_t i) { return static_cast<int>(i); });
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

// ------------------------------------------------------------ FunctionRef

TEST(FunctionRefTest, InvokesCapturingLambda) {
  int hits = 0;
  auto bump = [&hits](int by) { hits += by; };
  const FunctionRef<void(int)> ref = bump;
  ref(3);
  ref(4);
  EXPECT_EQ(hits, 7);
}

TEST(FunctionRefTest, InvokesMutableCallableInPlace) {
  // The reference aliases the callable rather than copying it, so state
  // mutated through one invocation is visible to the next — and to the
  // original object.
  struct Counter {
    int calls = 0;
    int operator()() { return ++calls; }
  };
  Counter counter;
  const FunctionRef<int()> ref = counter;
  EXPECT_EQ(ref(), 1);
  EXPECT_EQ(ref(), 2);
  EXPECT_EQ(counter.calls, 2);
}

TEST(FunctionRefTest, ForwardsReturnValueAndArguments) {
  auto add = [](int a, int b) { return a + b; };
  const FunctionRef<int(int, int)> ref = add;
  EXPECT_EQ(ref(19, 23), 42);
}

TEST(FunctionRefTest, BindsTemporaryForTheFullExpression) {
  // The intended calling convention: a lambda temporary passed straight
  // into a function taking FunctionRef lives until the call returns.
  const auto call_through = [](FunctionRef<int(int)> fn) { return fn(5); };
  int base = 100;
  EXPECT_EQ(call_through([&base](int x) { return base + x; }), 105);
}

// ------------------------------------------------------------- WorkerTeam

TEST(WorkerTeamTest, RunRoundCoversEveryWorkerIndexEachRound) {
  constexpr int kWorkers = 4;
  WorkerTeam team{kWorkers};
  ASSERT_EQ(team.workers(), kWorkers);
  std::vector<std::atomic<int>> hits(kWorkers);
  for (int round = 1; round <= 3; ++round) {
    team.run_round(
        [&hits](int worker) { hits[static_cast<std::size_t>(worker)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), round);
  }
}

TEST(WorkerTeamTest, RunRoundBorrowsTheClosureWithoutCopying) {
  // Regression pin for the run_round signature: the worker task is a
  // FunctionRef — borrowed, never copied or type-erased into an owning
  // wrapper — so per-worker effects land in the caller's own closure
  // state, however large the capture is.
  WorkerTeam team{3};
  struct Wide {
    long long lanes[12] = {};  // far past any small-buffer budget
  } wide;
  team.run_round([&wide](int worker) {
    wide.lanes[static_cast<std::size_t>(worker)] = worker + 1;
  });
  EXPECT_EQ(wide.lanes[0], 1);
  EXPECT_EQ(wide.lanes[1], 2);
  EXPECT_EQ(wide.lanes[2], 3);
}

}  // namespace
}  // namespace cloudlb

// Tests for the sharded parallel discrete-event engine
// (src/sim/sharded_simulator.h) and the runtime-facing
// WindowedShardRouter.
//
// The load-bearing claim is determinism: an order-insensitive workload
// must produce the same canonical execution record on the legacy
// Simulator, on a ShardedSimulator at every shard count, and in both
// serial and parallel window execution — and at one shard the merged
// engine trace must be *bitwise* identical to the legacy engine's.
// A 64-seed property grid (faults_test pattern; shift the worlds with
// CLOUDLB_SHARD_SEED_BASE) pins message conservation: nothing lost,
// nothing duplicated, per-channel FIFO preserved across shard barriers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/sim_time.h"

namespace cloudlb {
namespace {

constexpr SimTime kLookahead = SimTime::micros(50);

/// Deterministic stateless mixer — the only randomness source here, so
/// every draw is a pure function of (entity, tick, salt) and cannot
/// depend on execution interleaving.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t draw(std::uint64_t salt, int entity, int tick) {
  return mix64(salt ^ (static_cast<std::uint64_t>(entity) << 32) ^
               static_cast<std::uint64_t>(tick));
}

// ------------------------------------------------------------------
// Order-insensitive harness workload.
//
// Entities tick on self-driven timelines (absolute times precomputed
// from pure hashes), log a record per tick, and fire messages at hashed
// peers with latency >= kLookahead. Handlers touch only entity-local
// state, so the *multiset* of (time, entity, payload) records is an
// engine invariant: any conforming engine — legacy, sharded-serial,
// sharded-parallel, any shard count — must reproduce it exactly.

struct HarnessRecord {
  std::int64_t t;
  int entity;
  std::uint64_t payload;
};

struct Harness {
  int entities = 24;
  int ticks = 12;
  /// schedule(entity, absolute time, fn)
  std::function<void(int, SimTime, std::function<void()>)> schedule;
  /// post(src entity, dst entity, latency, fn)
  std::function<void(int, int, SimTime, std::function<void()>)> post;
  /// now(entity) — the clock of the engine executing this entity
  std::function<SimTime(int)> now;
  /// One log per entity: handlers only append to their own, which keeps
  /// parallel window execution race-free by construction.
  std::vector<std::vector<HarnessRecord>> logs;

  static SimTime tick_time(int e, int k) {
    return SimTime::nanos(1000 + 137 * e + 20000 * k +
                          static_cast<std::int64_t>(draw(0x11, e, k) % 3001));
  }

  void start() {
    logs.assign(static_cast<std::size_t>(entities), {});
    for (int e = 0; e < entities; ++e)
      schedule(e, tick_time(e, 0), [this, e] { tick(e, 0); });
  }

  void tick(int e, int k) {
    const std::uint64_t payload = draw(0x22, e, k);
    logs[static_cast<std::size_t>(e)].push_back(
        HarnessRecord{now(e).ns(), e, payload});
    const int peer = static_cast<int>(draw(0x33, e, k) %
                                      static_cast<std::uint64_t>(entities));
    if (peer != e) {
      const SimTime latency =
          kLookahead +
          SimTime::nanos(static_cast<std::int64_t>(draw(0x44, e, k) % 5000));
      post(e, peer, latency, [this, peer, payload] {
        logs[static_cast<std::size_t>(peer)].push_back(
            HarnessRecord{now(peer).ns(), peer, payload ^ 0xd00dfeedull});
      });
    }
    if (k + 1 < ticks)
      schedule(e, tick_time(e, k + 1), [this, e, k] { tick(e, k + 1); });
  }

  /// FNV-1a over the canonically sorted record multiset.
  std::uint64_t digest() const {
    std::vector<HarnessRecord> all;
    for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
    std::sort(all.begin(), all.end(),
              [](const HarnessRecord& a, const HarnessRecord& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.entity != b.entity) return a.entity < b.entity;
                return a.payload < b.payload;
              });
    std::uint64_t d = 1469598103934665603ull;
    const auto fnv = [&d](std::uint64_t word) {
      for (int b = 0; b < 8; ++b) {
        d ^= (word >> (8 * b)) & 0xffu;
        d *= 1099511628211ull;
      }
    };
    for (const HarnessRecord& r : all) {
      fnv(static_cast<std::uint64_t>(r.t));
      fnv(static_cast<std::uint64_t>(r.entity));
      fnv(r.payload);
    }
    return d;
  }
};

std::uint64_t legacy_harness_digest() {
  Simulator sim;
  Harness h;
  h.schedule = [&sim](int, SimTime t, std::function<void()> fn) {
    sim.schedule_at(t, std::move(fn));
  };
  h.post = [&sim](int, int, SimTime latency, std::function<void()> fn) {
    sim.schedule_after(latency, std::move(fn));
  };
  h.now = [&sim](int) { return sim.now(); };
  h.start();
  sim.run();
  return h.digest();
}

std::uint64_t sharded_harness_digest(int shards, bool parallel) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = kLookahead;
  cfg.parallel = parallel;
  cfg.workers = 4;  // oversubscription must not matter either
  ShardedSimulator sim{cfg};
  Harness h;
  const auto shard_of = [&h, shards](int e) { return e * shards / h.entities; };
  h.schedule = [&](int e, SimTime t, std::function<void()> fn) {
    sim.schedule_at(shard_of(e), t, std::move(fn));
  };
  h.post = [&](int src, int dst, SimTime latency, std::function<void()> fn) {
    sim.post(shard_of(src), shard_of(dst), latency, std::move(fn));
  };
  h.now = [&](int e) { return sim.shard_engine(shard_of(e)).now(); };
  h.start();
  sim.run();
  EXPECT_EQ(sim.cross_posts(), sim.cross_delivered());
  EXPECT_EQ(sim.pending(), 0u);
  return h.digest();
}

// The headline invariant: one workload, one answer — regardless of how
// the event space is sharded or whether windows run on worker threads.
TEST(ShardedSimTest, HarnessDigestIsEngineInvariant) {
  const std::uint64_t reference = legacy_harness_digest();
  ASSERT_NE(reference, 0u);
  for (const int shards : {1, 2, 4, 7}) {
    EXPECT_EQ(sharded_harness_digest(shards, /*parallel=*/false), reference)
        << "serial mode diverged at " << shards << " shards";
    EXPECT_EQ(sharded_harness_digest(shards, /*parallel=*/true), reference)
        << "parallel mode diverged at " << shards << " shards";
  }
}

// At one shard the sharded engine *is* the legacy engine plus a merge
// that has nothing to merge: the (time, seq) trace must match bitwise.
TEST(ShardedSimTest, SingleShardTraceIsBitwiseLegacy) {
  std::vector<std::pair<std::int64_t, std::uint64_t>> legacy_trace;
  {
    Simulator sim;
    sim.set_trace_hook([&legacy_trace](SimTime t, std::uint64_t seq) {
      legacy_trace.emplace_back(t.ns(), seq);
    });
    Harness h;
    h.schedule = [&sim](int, SimTime t, std::function<void()> fn) {
      sim.schedule_at(t, std::move(fn));
    };
    h.post = [&sim](int, int, SimTime latency, std::function<void()> fn) {
      sim.schedule_after(latency, std::move(fn));
    };
    h.now = [&sim](int) { return sim.now(); };
    h.start();
    sim.run();
  }

  std::vector<std::pair<std::int64_t, std::uint64_t>> sharded_trace;
  {
    ShardedSimulator::Config cfg;
    cfg.shards = 1;
    cfg.lookahead = kLookahead;
    ShardedSimulator sim{cfg};
    sim.set_trace_hook(
        [&sharded_trace](SimTime t, int shard, std::uint64_t seq) {
          EXPECT_EQ(shard, 0);
          sharded_trace.emplace_back(t.ns(), seq);
        });
    Harness h;
    h.schedule = [&sim](int, SimTime t, std::function<void()> fn) {
      sim.schedule_at(0, t, std::move(fn));
    };
    h.post = [&sim](int, int, SimTime latency, std::function<void()> fn) {
      sim.post(0, 0, latency, std::move(fn));
    };
    h.now = [&sim](int) { return sim.shard_engine(0).now(); };
    h.start();
    sim.run();
  }

  ASSERT_FALSE(legacy_trace.empty());
  EXPECT_EQ(sharded_trace, legacy_trace);
}

// ------------------------------------------------------------------
// Direct engine semantics.

TEST(ShardedSimTest, WindowClockAdvancesOnBarriers) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = SimTime::micros(60);
  ShardedSimulator sim{cfg};
  int fired = 0;
  sim.schedule_at(0, SimTime::micros(10), [&fired] { ++fired; });
  sim.schedule_at(1, SimTime::micros(100), [&fired] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.executed(), 2u);
  EXPECT_GE(sim.windows_run(), 2u);
  // run() leaves the clock at the last window barrier it closed.
  EXPECT_EQ(sim.now(), SimTime::micros(120));
}

TEST(ShardedSimTest, RunUntilStopsInclusivelyAndKeepsMailInFlight) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = kLookahead;
  ShardedSimulator sim{cfg};
  int local = 0;
  int remote = 0;
  sim.schedule_at(0, SimTime::micros(10), [&] {
    ++local;
    // In flight across the cutoff below: posted at 10us, due at 110us.
    sim.post(0, 1, SimTime::micros(100), [&remote] { ++remote; });
  });
  sim.schedule_at(1, SimTime::micros(40), [&local] { ++local; });

  sim.run_until(SimTime::micros(40));  // inclusive of the 40us event
  EXPECT_EQ(local, 2);
  EXPECT_EQ(remote, 0);
  EXPECT_EQ(sim.now(), SimTime::micros(40));
  EXPECT_EQ(sim.cross_posts(), 1u);
  EXPECT_EQ(sim.pending(), 1u);  // the buffered envelope

  sim.run();
  EXPECT_EQ(remote, 1);
  EXPECT_EQ(sim.cross_delivered(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(ShardedSimTest, CancelOnOwningShardWorks) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = kLookahead;
  ShardedSimulator sim{cfg};
  bool fired = false;
  const ShardEventHandle doomed =
      sim.schedule_at(1, SimTime::micros(30), [&fired] { fired = true; });
  EXPECT_TRUE(sim.cancel(doomed));   // between windows: always legal
  EXPECT_FALSE(sim.cancel(doomed));  // spent handle
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(ShardedSimTest, CrossShardCancelDuringWindowFailsLoudly) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = SimTime::micros(60);
  ShardedSimulator sim{cfg};
  // Shard 1's event is far away; shard 0's callback (shard 0 executes
  // first within the window) reaches across the boundary mid-window.
  const ShardEventHandle foreign =
      sim.schedule_at(1, SimTime::micros(500), [] {});
  sim.schedule_at(0, SimTime::micros(10), [&sim, foreign] {
    static_cast<void>(sim.cancel(foreign));
  });
  EXPECT_THROW(sim.run(), CheckFailure);
}

TEST(ShardedSimTest, CrossShardPostBelowLookaheadIsRejected) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = SimTime::micros(60);
  ShardedSimulator sim{cfg};
  // 10us < the 60us lookahead: delivering it could pierce a window.
  EXPECT_THROW(sim.post(0, 1, SimTime::micros(10), [] {}), CheckFailure);
  // Same latency within a shard is fine — no window to pierce.
  sim.post(0, 0, SimTime::micros(10), [] {});
  sim.run();
}

TEST(ShardedSimTest, ReserveForwardsToEveryShard) {
  ShardedSimulator::Config cfg;
  cfg.shards = 3;
  cfg.lookahead = kLookahead;
  ShardedSimulator sim{cfg};
  sim.reserve(64, 64);
  for (int s = 0; s < 3; ++s)
    sim.schedule_at(s, SimTime::micros(s + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 3u);
  sim.validate_integrity();
}

TEST(ShardedSimTest, WorkerExceptionsSurfaceInParallelMode) {
  ShardedSimulator::Config cfg;
  cfg.shards = 4;
  cfg.lookahead = kLookahead;
  cfg.parallel = true;
  ShardedSimulator sim{cfg};
  EXPECT_TRUE(sim.parallel());
  EXPECT_GE(sim.workers(), 1);
  sim.schedule_at(2, SimTime::micros(5), [] {
    CLB_CHECK_MSG(false, "deliberate failure inside a window");
  });
  EXPECT_THROW(sim.run(), CheckFailure);
}

// ------------------------------------------------------------------
// 64-seed property grid: message conservation across shard boundaries.
//
// Each world drives a random cross-shard traffic pattern with constant
// per-post latency (= lookahead), so each (src, dst) channel must be
// received in exact send order (FIFO), with nothing lost or duplicated
// — and the parallel receive log must equal the serial one bitwise.

std::uint64_t shard_seed_base() {
  const char* env = std::getenv("CLOUDLB_SHARD_SEED_BASE");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

struct TrafficWorld {
  using Channel = std::pair<int, int>;
  std::map<Channel, std::vector<std::uint64_t>> sent;
  std::map<Channel, std::vector<std::uint64_t>> received;
};

/// Runs one random world; returns the per-channel send/receive logs.
TrafficWorld run_traffic_world(std::uint64_t seed, bool parallel) {
  const int shards = 2 + static_cast<int>(mix64(seed) % 5);  // 2..6
  const int rounds = 4 + static_cast<int>(mix64(seed ^ 1) % 5);
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = kLookahead;
  cfg.parallel = parallel;
  ShardedSimulator sim{cfg};

  // Every channel entry is created up front, before the engine starts:
  // during the run, handlers only push_back into existing vectors. A
  // channel's send log is appended only by its source shard and its
  // receive log only by its destination shard, so parallel workers never
  // share a vector — and the pre-built map never rebalances under them.
  TrafficWorld world;
  TrafficWorld* w = &world;
  for (int s = 0; s < shards; ++s)
    for (int d = 0; d < shards; ++d)
      if (s != d) {
        world.sent[{s, d}];
        world.received[{s, d}];
      }

  // Each shard ticks `rounds` times at hashed offsets; every tick posts
  // to a hashed peer shard with constant latency, so per-channel receive
  // order must equal send order exactly.
  std::function<void(int, int)> tick = [&sim, w, seed, rounds, shards,
                                        &tick](int s, int k) {
    const std::uint64_t id = mix64(seed ^ draw(0x55, s, k));
    const int dst = static_cast<int>(draw(seed, s, k) %
                                     static_cast<std::uint64_t>(shards));
    if (dst != s) {
      w->sent[{s, dst}].push_back(id);
      sim.post(s, dst, kLookahead, [w, s, dst, id] {
        w->received[{s, dst}].push_back(id);
      });
    }
    if (k + 1 < rounds) {
      sim.schedule_after(
          s,
          SimTime::nanos(15000 +
                         static_cast<std::int64_t>(draw(0x66, s, k) % 9000)),
          [s, k, &tick] { tick(s, k + 1); });
    }
  };
  for (int s = 0; s < shards; ++s) {
    const int shard = s;
    sim.schedule_at(shard, SimTime::nanos(100 + 31 * shard),
                    [shard, &tick] { tick(shard, 0); });
  }
  sim.run();
  std::uint64_t total_sent = 0;
  for (const auto& [channel, ids] : world.sent) total_sent += ids.size();
  EXPECT_EQ(sim.cross_posts(), total_sent);
  EXPECT_EQ(sim.cross_delivered(), total_sent);
  EXPECT_EQ(sim.pending(), 0u);
  return world;
}

TEST(ShardedSimPropertyTest, NoMessageLostDuplicatedOrReordered) {
  const std::uint64_t base = shard_seed_base();
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t seed = base * 1000 + i;
    const TrafficWorld serial = run_traffic_world(seed, /*parallel=*/false);
    // Conservation + FIFO against the send log.
    EXPECT_EQ(serial.received, serial.sent) << "world " << seed;
    const TrafficWorld par = run_traffic_world(seed, /*parallel=*/true);
    EXPECT_EQ(par.received, serial.received) << "world " << seed;
    EXPECT_EQ(par.sent, serial.sent) << "world " << seed;
  }
}

// ------------------------------------------------------------------
// WindowedShardRouter: the runtime-facing half of the protocol.

TEST(WindowedShardRouterTest, BlockPartitionIsMonotoneAndBalanced) {
  Simulator sim;
  WindowedShardRouter router{sim, 3, 8, SimTime::micros(60)};
  std::vector<int> counts(3, 0);
  int prev = 0;
  for (int node = 0; node < 8; ++node) {
    const int s = router.shard_of(node);
    ASSERT_GE(s, prev);  // contiguous blocks
    ASSERT_LT(s, 3);
    prev = s;
    ++counts[static_cast<std::size_t>(s)];
  }
  // Near-equal: block sizes differ by at most one... plus remainder slack.
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 8);
  for (const int c : counts) EXPECT_GE(c, 2);
  EXPECT_FALSE(router.crosses_shards(0, 1));  // nodes 0,1 -> shard 0
  EXPECT_TRUE(router.crosses_shards(0, 7));
}

TEST(WindowedShardRouterTest, ReleasesAtBarrierInCanonicalOrder) {
  Simulator sim;
  WindowedShardRouter router{sim, 4, 4, SimTime::micros(60)};
  std::vector<int> order;
  // From inside an event at 10us (barrier = 60us), buffer three
  // deliveries due at the *same* instant from different sources — plus
  // one later one. Canonical release: (deliver, src, seq).
  sim.schedule_at(SimTime::micros(10), [&] {
    router.route(2, 0, SimTime::micros(100), [&order] { order.push_back(0); });
    router.route(1, 3, SimTime::micros(100), [&order] { order.push_back(1); });
    router.route(1, 0, SimTime::micros(100), [&order] { order.push_back(2); });
    router.route(0, 3, SimTime::micros(90), [&order] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(router.routed(), 4u);
  EXPECT_EQ(router.flushes(), 1u);
  EXPECT_EQ(router.buffered(), 0u);
  // 90us first; then the 100us tie broken by (src 1 seq 0), (src 1
  // seq 1), (src 2 seq 0).
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2, 0}));
}

TEST(WindowedShardRouterTest, DeliveryBehindTheBarrierIsRejected) {
  Simulator sim;
  WindowedShardRouter router{sim, 2, 2, SimTime::micros(60)};
  sim.schedule_at(SimTime::micros(10), [&] {
    // Due at 30us, but the barrier is at 60us: the window would be
    // pierced — exactly what the latency floor exists to prevent.
    router.route(0, 1, SimTime::micros(30), [] {});
  });
  EXPECT_THROW(sim.run(), CheckFailure);
}

TEST(WindowedShardRouterTest, CoShardedRouteIsRejected) {
  Simulator sim;
  WindowedShardRouter router{sim, 2, 4, SimTime::micros(60)};
  EXPECT_THROW(router.route(0, 1, SimTime::micros(100), [] {}),
               CheckFailure);
}

TEST(WindowedShardRouterTest, LazyFlushSchedulesOncePerOccupiedWindow) {
  Simulator sim;
  WindowedShardRouter router{sim, 2, 2, SimTime::micros(60)};
  std::vector<std::int64_t> fire_times;
  const auto probe = [&] {
    fire_times.push_back(sim.now().ns());
  };
  sim.schedule_at(SimTime::micros(10), [&] {
    router.route(0, 1, SimTime::micros(100), probe);
    router.route(0, 1, SimTime::micros(70), probe);
  });
  // A later window's traffic gets its own flush; idle windows get none.
  sim.schedule_at(SimTime::micros(200), [&] {
    router.route(1, 0, SimTime::micros(300), probe);
  });
  sim.run();
  EXPECT_EQ(router.flushes(), 2u);
  EXPECT_EQ(fire_times,
            (std::vector<std::int64_t>{70000, 100000, 300000}));
}

}  // namespace
}  // namespace cloudlb

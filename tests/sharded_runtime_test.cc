#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/scenario.h"
#include "lb/greedy_lb.h"
#include "machine/machine.h"
#include "runtime/chare.h"
#include "runtime/job.h"
#include "runtime/network.h"
#include "runtime/sharded_runtime.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "vm/virtual_machine.h"

// Differential tier for the shard-partitioned runtime: the same scenario
// run on the legacy single engine and on ShardedRuntimeHost must produce
// bit-identical aggregate metrics for every shard count and worker count
// (docs/sharded-engine.md). The grid is seeded; set CLOUDLB_SHARD_SEED_BASE
// to shift all 256 scenarios to a fresh region of the configuration space.

namespace cloudlb {
namespace {

std::uint64_t seed_base() {
  const char* env = std::getenv("CLOUDLB_SHARD_SEED_BASE");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// Bit pattern of a double: "equal" below means *identical*, not close.
std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Everything a RunResult says, flattened to exactly comparable integers.
struct Metrics {
  std::int64_t app_ns = 0;
  std::int64_t bg_ns = -1;  ///< -1 when no background job ran
  std::uint64_t energy_bits = 0;
  std::uint64_t power_bits = 0;
  std::int64_t tasks = 0;
  std::int64_t messages = 0;
  std::int64_t migrated_bytes = 0;
  int lb_steps = 0;
  int migrations = 0;
  int retries = 0;
  int failed = 0;

  friend bool operator==(const Metrics& a, const Metrics& b) {
    return std::tie(a.app_ns, a.bg_ns, a.energy_bits, a.power_bits, a.tasks,
                    a.messages, a.migrated_bytes, a.lb_steps, a.migrations,
                    a.retries, a.failed) ==
           std::tie(b.app_ns, b.bg_ns, b.energy_bits, b.power_bits, b.tasks,
                    b.messages, b.migrated_bytes, b.lb_steps, b.migrations,
                    b.retries, b.failed);
  }

  friend std::ostream& operator<<(std::ostream& os, const Metrics& m) {
    return os << "{app_ns=" << m.app_ns << " bg_ns=" << m.bg_ns
              << " energy=" << m.energy_bits << " power=" << m.power_bits
              << " tasks=" << m.tasks << " messages=" << m.messages
              << " bytes=" << m.migrated_bytes << " lb=" << m.lb_steps
              << " mig=" << m.migrations << " retries=" << m.retries
              << " failed=" << m.failed << "}";
  }
};

Metrics metrics_of(const RunResult& r) {
  Metrics m;
  m.app_ns = r.app_elapsed.ns();
  if (r.bg_elapsed.has_value()) m.bg_ns = r.bg_elapsed->ns();
  m.energy_bits = bits(r.energy_joules);
  m.power_bits = bits(r.avg_power_watts);
  m.tasks = r.app_counters.tasks_executed;
  m.messages = r.app_counters.messages_sent;
  m.migrated_bytes = r.app_counters.migrated_bytes;
  m.lb_steps = r.app_counters.lb_steps;
  m.migrations = r.app_counters.migrations;
  m.retries = r.app_counters.migration_retries;
  m.failed = r.app_counters.migrations_failed;
  return m;
}

/// One random multi-node scenario. Small on purpose — the grid runs each
/// one up to eight times — but varied where variation stresses the
/// partition: heterogeneous core speeds break PE symmetry, >= 2 chares
/// per PE keeps migrations meaningful, background jobs exercise the
/// two-job barrier bookkeeping, staggered BG starts exercise timed
/// actions landing between windows.
ScenarioConfig scenario_for(Rng& rng) {
  ScenarioConfig cfg;
  cfg.machine.cores_per_node = static_cast<int>(rng.uniform_int(2, 4));
  const int nodes = static_cast<int>(rng.uniform_int(2, 5));
  cfg.app_cores = nodes * cfg.machine.cores_per_node;
  if (rng.next_double() < 0.3) {
    const int overrides = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < overrides; ++i)
      cfg.machine.core_speed_overrides.emplace_back(
          static_cast<int>(rng.uniform_int(0, cfg.app_cores - 1)),
          rng.uniform(0.6, 1.4));
  }

  cfg.app.name = rng.next_double() < 0.5 ? "jacobi2d" : "wave2d";
  cfg.app.iterations = static_cast<int>(rng.uniform_int(6, 9));
  cfg.app.blocks_x = 8;
  cfg.app.blocks_y = std::max(3, (2 * cfg.app_cores + 7) / 8);
  cfg.app.work_scale = rng.uniform(0.5, 1.5);

  cfg.balancer = rng.next_double() < 0.8 ? "ia-refine" : "greedy";
  cfg.lb_period = static_cast<int>(rng.uniform_int(2, 4));
  cfg.job.migration_max_retries = static_cast<int>(rng.uniform_int(0, 2));

  cfg.with_background = rng.next_double() < 0.5;
  cfg.bg_cores = 2;
  cfg.bg_iterations = static_cast<int>(rng.uniform_int(8, 20));
  if (rng.next_double() < 0.4)
    cfg.bg_start = SimTime::millis(rng.uniform_int(1, 15));

  cfg.shards = 1;
  cfg.shard_workers = 0;
  return cfg;
}

/// Outcome of one sharded run: metrics, or the documented loud refusal
/// (a barrier cascade completed inside a window some engine had already
/// run past — the "LB cadence shorter than the window" case, which the
/// runtime rejects rather than approximate).
struct Outcome {
  std::optional<Metrics> metrics;
  std::string refusal;  ///< the CheckFailure message when refused

  friend bool operator==(const Outcome& a, const Outcome& b) {
    // Two refusals match regardless of message detail: the *decision* to
    // refuse must be worker-count independent, the text may name times.
    return a.metrics == b.metrics;
  }
};

Outcome run_outcome(const ScenarioConfig& cfg) {
  try {
    return Outcome{metrics_of(run_scenario(cfg)), {}};
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    // Only the documented refusal is acceptable; anything else is a bug
    // and must fail the test.
    if (what.find("rewind_clock past executed work") == std::string::npos)
      throw;
    return Outcome{std::nullopt, what};
  }
}

class ShardedGridTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedGridTest, MetricsMatchLegacyBitForBit) {
  const std::uint64_t seed =
      seed_base() * 9'000'011ull + static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const ScenarioConfig base = scenario_for(rng);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " app=" + base.app.name +
               " cores=" + std::to_string(base.app_cores) + " bg=" +
               std::to_string(base.with_background));

  // The legacy engine must always complete; it is the reference.
  const Metrics legacy = metrics_of(run_scenario(base));
  EXPECT_GT(legacy.tasks, 0);

  // --shards=1 is the legacy dispatch path: bitwise identity is free, and
  // a nonzero worker count must be inert there.
  {
    ScenarioConfig cfg = base;
    cfg.shards = 1;
    cfg.shard_workers = 4;
    EXPECT_EQ(metrics_of(run_scenario(cfg)), legacy) << "--shards=1 diverged";
  }

  for (const int shards : {2, 4, 7}) {
    ScenarioConfig cfg = base;
    cfg.shards = shards;
    cfg.shard_workers = 1;
    const Outcome serial = run_outcome(cfg);
    cfg.shard_workers = 3;
    const Outcome parallel = run_outcome(cfg);

    // Serial and parallel windows must agree on the outcome — refusal is
    // a function of event times, which are worker-count independent.
    EXPECT_EQ(serial, parallel)
        << "serial/parallel diverged at " << shards << " shards";

    if (serial.metrics.has_value()) {
      EXPECT_EQ(*serial.metrics, legacy)
          << "sharded run diverged from legacy at " << shards << " shards";
    } else {
      // A cascade can only be outrun by traffic that keeps executing
      // while the app waits at its barrier — without a background job
      // every engine quiesces behind the wave and rewind always succeeds.
      EXPECT_TRUE(base.with_background)
          << "refusal without background traffic: " << serial.refusal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedGridTest, ::testing::Range(0, 256));

// The refusal path must stay the rare exception, or the differential tier
// stops being one. Self-contained on purpose: gtest_discover_tests runs
// every test in its own process, so no cross-test tally can survive to a
// final test — instead this re-runs the grid's 256 scenarios at the
// cheapest sharded column (2 shards, serial windows, no legacy reference)
// and counts outcomes directly.
TEST(ShardedGridTally, RefusalsStayTheRareException) {
  int completed = 0;
  int refused = 0;
  for (int param = 0; param < 256; ++param) {
    const std::uint64_t seed =
        seed_base() * 9'000'011ull + static_cast<std::uint64_t>(param);
    Rng rng{seed};
    ScenarioConfig cfg = scenario_for(rng);
    cfg.shards = 2;
    cfg.shard_workers = 1;
    const Outcome o = run_outcome(cfg);
    if (o.metrics.has_value()) {
      ++completed;
    } else {
      ++refused;
      EXPECT_TRUE(cfg.with_background)
          << "seed " << seed
          << " refused without background traffic: " << o.refusal;
    }
  }
  ASSERT_EQ(completed + refused, 256);
  EXPECT_GE(completed, 230) << refused << " of 256 seeds refused";
}

// ------------------------------------------------------------ edge cases

/// Legacy-vs-sharded comparison for one explicit machine shape.
void expect_shape_matches(int nodes, int cores_per_node, int shards) {
  ScenarioConfig cfg;
  cfg.machine.cores_per_node = cores_per_node;
  cfg.app_cores = nodes * cores_per_node;
  cfg.app.name = "jacobi2d";
  cfg.app.iterations = 6;
  cfg.app.blocks_x = 8;
  cfg.app.blocks_y = std::max(3, (2 * cfg.app_cores + 7) / 8);
  cfg.lb_period = 3;
  cfg.with_background = false;
  cfg.shards = 1;
  const Metrics legacy = metrics_of(run_scenario(cfg));

  cfg.shards = shards;
  for (const int workers : {1, 3}) {
    cfg.shard_workers = workers;
    EXPECT_EQ(metrics_of(run_scenario(cfg)), legacy)
        << nodes << " nodes / " << shards << " shards / " << workers
        << " workers";
  }
}

TEST(ShardedEdgeTest, NodesNotDivisibleByShards) {
  // 5 nodes over 2 shards: block map gives 3 + 2; 7 over 3: 3 + 2 + 2.
  expect_shape_matches(/*nodes=*/5, /*cores_per_node=*/2, /*shards=*/2);
  expect_shape_matches(/*nodes=*/7, /*cores_per_node=*/2, /*shards=*/3);
}

TEST(ShardedEdgeTest, MoreShardsThanNodes) {
  // Clamped to one shard per node; still bit-identical to legacy.
  expect_shape_matches(/*nodes=*/3, /*cores_per_node=*/2, /*shards=*/64);
}

TEST(ShardedEdgeTest, SingleNodeShards) {
  // Exactly one node per shard: every cross-node message crosses shards.
  expect_shape_matches(/*nodes=*/4, /*cores_per_node=*/2, /*shards=*/4);
}

TEST(ShardedEdgeTest, SingleNodeMachineStaysLegacy) {
  // One node cannot be partitioned; --shards must dispatch to the legacy
  // path (and so trivially match it) instead of building a one-shard host.
  ScenarioConfig cfg;
  cfg.machine.cores_per_node = 4;
  cfg.app_cores = 4;
  cfg.app.iterations = 6;
  cfg.app.blocks_x = 4;
  cfg.app.blocks_y = 2;
  cfg.with_background = false;
  cfg.shards = 1;
  const Metrics legacy = metrics_of(run_scenario(cfg));
  cfg.shards = 8;
  cfg.shard_workers = 2;
  EXPECT_EQ(metrics_of(run_scenario(cfg)), legacy);
}

// --------------------------------------- direct-host structural checks

/// Chare that syncs every iteration — with per-iteration costs far below
/// the 60 µs window, whole AtSync waves complete inside single windows,
/// forcing the rewind-recovery path on every period.
class TinyWorker final : public Chare {
 public:
  TinyWorker(int iterations, SimTime cost)
      : iterations_{iterations}, cost_{cost} {}
  void on_start() override { send(id(), 0, {}); }
  SimTime cost(const Message&) const override { return cost_; }
  void execute(const Message&) override {
    ++iter_;
    if (iter_ >= iterations_) {
      finish();
      return;
    }
    at_sync();
  }
  void on_resume_sync() override { send(id(), 0, {}); }
  std::size_t footprint_bytes() const override { return 1024; }

 private:
  int iterations_;
  SimTime cost_;
  int iter_ = 0;
};

TEST(ShardedHostTest, InWindowCascadesRecoverByRewind) {
  // 1 µs tasks against a 60 µs window: every LB wave completes in-window
  // and must be recovered exactly (counted via the host's rewind counter).
  MachineConfig mc;
  mc.nodes = 4;
  mc.cores_per_node = 2;
  ShardedRuntimeHost::Config hc;
  hc.shards = 4;
  hc.window = shard_window_width(JobConfig{}.network);
  ShardedRuntimeHost host{mc, hc};
  std::vector<CoreId> ids(8);
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{host.machine(), "app", ids};
  JobConfig jc;
  jc.lb_period = 2;
  RuntimeJob job{host, vm, jc, std::make_unique<GreedyLb>()};
  for (int i = 0; i < 16; ++i)
    static_cast<void>(job.add_chare(
        std::make_unique<TinyWorker>(8, SimTime::micros(i % 3 + 1))));
  job.start();
  host.drive(10'000'000);
  EXPECT_TRUE(job.finished());
  EXPECT_GT(host.rewinds(), 0u);
  job.validate_invariants();
}

TEST(ShardedHostTest, MonotonePerShardClocksAndDenseAssignments) {
  MachineConfig mc;
  mc.nodes = 3;
  mc.cores_per_node = 2;
  ShardedRuntimeHost::Config hc;
  hc.shards = 3;
  hc.window = shard_window_width(JobConfig{}.network);
  ShardedRuntimeHost host{mc, hc};

  // Per-shard clocks may only move forward, window after window.
  std::vector<SimTime> last(3, SimTime::zero());
  bool monotone = true;
  host.sharded().set_trace_hook(
      [&last, &monotone](SimTime t, int shard, std::uint64_t) {
        if (t < last[static_cast<std::size_t>(shard)]) monotone = false;
        last[static_cast<std::size_t>(shard)] = t;
      });

  std::vector<CoreId> ids(6);
  std::iota(ids.begin(), ids.end(), 0);
  VirtualMachine vm{host.machine(), "app", ids};
  JobConfig jc;
  jc.lb_period = 4;
  RuntimeJob job{host, vm, jc, std::make_unique<GreedyLb>()};
  for (int i = 0; i < 12; ++i)
    static_cast<void>(job.add_chare(std::make_unique<TinyWorker>(
        10, SimTime::micros(40 * (i % 4 + 1)))));
  job.start();
  host.drive(10'000'000);

  ASSERT_TRUE(job.finished());
  EXPECT_TRUE(monotone) << "a shard executed an event before its clock";

  // Dense assignment: every chare mapped to a real PE, none lost.
  std::int64_t tasks = 0;
  for (std::size_t c = 0; c < job.num_chares(); ++c) {
    const PeId pe = job.pe_of(static_cast<ChareId>(c));
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, static_cast<PeId>(vm.num_vcpus()));
  }
  // Task conservation: 12 chares × 10 iterations, each exactly once.
  tasks = job.counters().tasks_executed;
  EXPECT_EQ(tasks, 12 * 10);
  job.validate_invariants();
}

}  // namespace
}  // namespace cloudlb

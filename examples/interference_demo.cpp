// Interference demo: watch the interference-aware balancer chase a
// background job that appears, disappears and reappears on a different
// core — the scenario behind the paper's Figure 3.
//
// Usage: interference_demo [balancer] [cores]
//   balancer: null | greedy | refine | random | ia-refine | gain-gated
//             (default ia-refine)
//   cores:    size of the application allocation (default 4)
//
// Try `interference_demo null` to see what happens without balancing.

#include <cstdlib>
#include <iostream>
#include <numeric>

#include "apps/wave2d.h"
#include "core/balancer_factory.h"
#include "machine/machine.h"
#include "metrics/timeline.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/table.h"
#include "vm/interferer.h"
#include "vm/virtual_machine.h"

int main(int argc, char** argv) {
  using namespace cloudlb;

  const std::string balancer = argc > 1 ? argv[1] : "ia-refine";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 4;
  if (cores < 2 || cores > 64) {
    std::cerr << "cores must be in [2, 64]\n";
    return 1;
  }

  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = (cores + 3) / 4,
                                     .cores_per_node = 4, .core_speed_overrides = {}}};
  std::vector<CoreId> core_ids(static_cast<std::size_t>(cores));
  std::iota(core_ids.begin(), core_ids.end(), 0);
  VirtualMachine vm{machine, "wave2d", core_ids};

  JobConfig job_config;
  job_config.name = "wave2d";
  job_config.lb_period = 3;
  RuntimeJob job{sim, vm, job_config, make_balancer(balancer)};
  Wave2dConfig wc;
  wc.layout.iterations = 60;
  populate_wave2d(job, wc);

  TimelineTracer tracer;
  job.set_observer(&tracer);

  // Two interference episodes on different cores.
  SyntheticInterferer hog_a{sim, machine, {0}};
  SyntheticInterferer hog_b{sim, machine, {cores - 1}};
  sim.schedule_at(SimTime::from_seconds(0.5), [&] { hog_a.start(); });
  sim.schedule_at(SimTime::from_seconds(3.0), [&] { hog_a.stop(); });
  sim.schedule_at(SimTime::from_seconds(4.0), [&] { hog_b.start(); });
  sim.schedule_at(SimTime::from_seconds(6.5), [&] { hog_b.stop(); });

  job.start();
  while (!job.finished()) CLB_CHECK(sim.step());

  std::cout << "Wave2D on " << cores << " cores, balancer '" << balancer
            << "'\ninterference: core 0 during [0.5s, 3.0s), core "
            << cores - 1 << " during [4.0s, 6.5s)\n\n";

  Table iterations({"iteration", "completed at (s)", "duration (ms)"});
  SimTime prev = job.start_time();
  for (std::size_t i = 0; i < job.iteration_times().size(); ++i) {
    const SimTime t = job.iteration_times()[i];
    iterations.add_row({std::to_string(i), Table::num(t.to_seconds(), 2),
                        Table::num((t - prev).to_millis(), 1)});
    prev = t;
  }
  iterations.print(std::cout);

  std::cout << "\nLB steps:\n";
  Table lb({"step", "time (s)", "migrations"});
  for (const LbMark& mark : tracer.lb_marks())
    lb.add_row({std::to_string(mark.step),
                Table::num(mark.time.to_seconds(), 2),
                std::to_string(mark.migrations)});
  lb.print(std::cout);

  std::cout << "\ncompleted in " << job.elapsed().to_string() << " with "
            << job.counters().migrations << " migrations\n\n";
  if (cores <= 8) {
    std::cout << "per-core timeline (W = app task, . = idle):\n";
    tracer.render_ascii(std::cout, cores, SimTime::zero(), job.finish_time(),
                        100);
  }
  return 0;
}

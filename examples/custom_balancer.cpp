// Custom balancer: the Charm++ LB framework lets applications plug in
// their own strategies ("Programmers can add their own application or
// platform specific strategy", paper §III). This example writes one from
// scratch — an aggressive "evacuate" policy that moves EVERY chare off
// any core with measurable background load — wires it into a job, and
// compares it against the paper's refinement scheme.
//
// Evacuation overreacts: it empties the interfered cores (which still
// have some capacity left) and dumps their entire load on the others,
// while ia-refine leaves each interfered core exactly the slice it can
// still serve.

#include <iostream>
#include <numeric>
#include <vector>

#include "core/background_estimator.h"
#include "core/scenario.h"
#include "lb/framework.h"
#include "util/table.h"

namespace {

using namespace cloudlb;

/// Moves every chare off PEs whose estimated background load exceeds
/// 5% of the window, distributing them round-robin over quiet PEs.
class EvacuateLb final : public LoadBalancer {
 public:
  std::string name() const override { return "evacuate"; }

  std::vector<PeId> assign(const LbStats& stats) override {
    const std::vector<double> background = estimate_background_load(stats);
    std::vector<bool> interfered(stats.pes.size(), false);
    std::vector<PeId> quiet;
    for (std::size_t p = 0; p < stats.pes.size(); ++p) {
      interfered[p] = background[p] > 0.05 * stats.pes[p].wall_sec;
      if (!interfered[p]) quiet.push_back(static_cast<PeId>(p));
    }
    std::vector<PeId> assignment = stats.current_assignment();
    if (quiet.empty()) return assignment;  // nowhere to run: stay put
    std::size_t next = 0;
    for (std::size_t c = 0; c < assignment.size(); ++c) {
      if (interfered[static_cast<std::size_t>(assignment[c])]) {
        assignment[c] = quiet[next];
        next = (next + 1) % quiet.size();
      }
    }
    return assignment;
  }
};

/// Runs the standard interference scenario with an externally supplied
/// balancer instance (bypassing the name-based factory).
PenaltyResult run_with(std::unique_ptr<LoadBalancer> balancer_for_combined) {
  ScenarioConfig config;
  config.app.name = "jacobi2d";
  config.app.iterations = 60;
  config.app_cores = 8;
  config.lb_period = 5;
  config.bg_iterations = 150;

  // The scenario runner builds balancers by name; for a custom strategy we
  // drive the three runs ourselves using the public pieces.
  PenaltyResult out;
  ScenarioConfig solo = config;
  solo.with_background = false;
  solo.balancer = "null";
  out.base = run_scenario(solo);
  out.bg_solo = run_background_solo(config);

  // run_scenario only knows names, so for the combined run we register the
  // custom balancer through the generic RuntimeJob API instead — see
  // run_scenario's implementation; here the simplest path is a local copy
  // of its combined-run logic via the "custom:" escape below.
  out.combined = run_scenario_with(config, std::move(balancer_for_combined));
  out.app_penalty_pct = percent_increase(out.combined.app_elapsed.to_seconds(),
                                         out.base.app_elapsed.to_seconds());
  out.bg_penalty_pct = percent_increase(out.combined.bg_elapsed->to_seconds(),
                                        out.bg_solo.to_seconds());
  out.energy_overhead_pct =
      percent_increase(out.combined.energy_joules, out.base.energy_joules);
  return out;
}

}  // namespace

int main() {
  using namespace cloudlb;

  std::cout << "Custom balancer demo: 'evacuate' vs the paper's "
               "'ia-refine'\n(Jacobi2D, 8 cores, 2-core background job)\n\n";

  Table table({"balancer", "app penalty %", "BG penalty %", "migrations"});
  {
    const PenaltyResult r = run_with(std::make_unique<EvacuateLb>());
    table.add_row({"evacuate (custom)", Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   std::to_string(r.combined.lb_migrations)});
  }
  {
    const PenaltyResult r =
        run_penalty_experiment([] {
          ScenarioConfig config;
          config.app.name = "jacobi2d";
          config.app.iterations = 60;
          config.app_cores = 8;
          config.balancer = "ia-refine";
          config.lb_period = 5;
          config.bg_iterations = 150;
          return config;
        }());
    table.add_row({"ia-refine (paper)", Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   std::to_string(r.combined.lb_migrations)});
  }
  table.print(std::cout);
  std::cout << "\nevacuation wastes the interfered cores' leftover capacity "
               "and keeps\nre-migrating; refinement sizes each core's load "
               "to what it can serve.\n";
  return 0;
}

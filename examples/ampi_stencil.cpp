// AMPI demo: the paper's adoption path for MPI codes. A 1D ring stencil
// written rank-style against the mini-AMPI facade (send/recv/allreduce/
// sync), over-decomposed into 32 "MPI processes" on 4 cores. Because
// ranks are migratable chares, the interference-aware balancer moves them
// off a core that a co-located tenant starts hammering mid-run — no
// change to the "MPI" program required beyond the periodic sync() call.

#include <cmath>
#include <functional>
#include <iostream>
#include <memory>
#include <numeric>

#include "core/balancer_factory.h"
#include "machine/machine.h"
#include "runtime/ampi.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/table.h"
#include "vm/interferer.h"
#include "vm/virtual_machine.h"

namespace {

using namespace cloudlb;
using ampi::Rank;

constexpr int kRanks = 32;
constexpr int kIterations = 48;
constexpr int kSyncEvery = 4;

/// The "MPI" program each rank runs: exchange halo values with ring
/// neighbours, relax, occasionally allreduce a residual, sync for LB.
void rank_main(Rank& self) {
  struct State {
    double x;
    int iter = 0;
  };
  auto st = std::make_shared<State>();
  st->x = std::sin(0.3 * self.rank());
  const int left = (self.rank() + kRanks - 1) % kRanks;
  const int right = (self.rank() + 1) % kRanks;

  auto step = std::make_shared<std::function<void()>>();
  *step = [&self, st, left, right, step] {
    if (st->iter == kIterations) {
      self.done();
      return;
    }
    const int tag = st->iter % 2;
    self.send(left, tag, {st->x});
    self.send(right, tag, {st->x});
    self.recv(left, tag, [&self, st, right, tag, step](std::vector<double> lv) {
      self.recv(right, tag, [&self, st, lv, step](std::vector<double> rv) {
        self.compute(SimTime::millis(8), [&self, st, lv, rv, step] {
          st->x = 0.25 * lv[0] + 0.5 * st->x + 0.25 * rv[0];
          ++st->iter;
          if (st->iter % kSyncEvery == 0 && st->iter < kIterations) {
            self.sync([step] { (*step)(); });
          } else {
            (*step)();
          }
        });
      });
    });
  };
  (*step)();
}

double run_with(const std::string& balancer, int* migrations) {
  Simulator sim;
  Machine machine{sim, MachineConfig{.nodes = 1, .cores_per_node = 4, .core_speed_overrides = {}}};
  VirtualMachine vm{machine, "ampi", {0, 1, 2, 3}};
  JobConfig config;
  config.name = "ampi";
  config.lb_period = kSyncEvery;
  RuntimeJob job{sim, vm, config, make_balancer(balancer)};
  ampi::populate_ranks(job, kRanks, rank_main);

  // A tenant VM starts hogging core 2 a third of the way into the run.
  SyntheticInterferer hog{sim, machine, {2}};
  sim.schedule_at(SimTime::from_seconds(0.3), [&] { hog.start(); });

  job.start();
  while (!job.finished()) CLB_CHECK(sim.step());
  hog.stop();
  *migrations = job.counters().migrations;
  return job.elapsed().to_seconds();
}

}  // namespace

int main() {
  std::cout << "Mini-AMPI: " << kRanks << " 'MPI processes' on 4 cores, "
            << "tenant VM hits core 2 at t=0.3s\n\n";
  cloudlb::Table table({"balancer", "time (s)", "migrations"});
  for (const char* balancer : {"null", "ia-refine"}) {
    int migrations = 0;
    const double elapsed = run_with(balancer, &migrations);
    table.add_row({balancer, cloudlb::Table::num(elapsed, 3),
                   std::to_string(migrations)});
  }
  table.print(std::cout);
  std::cout << "\nranks are migratable user-level 'threads': the balancer "
               "relocates them away\nfrom the contended core without the "
               "MPI-style program changing at all.\n";
  return 0;
}

// Energy study: the paper's Figure 4 argument in one program. Load
// balancing raises average power (fewer idle cycles, dynamic power is
// proportional to utilization) yet lowers total energy, because the run
// gets shorter and the 40 W/node base power dominates the bill.
//
// Usage: energy_study [app]   (jacobi2d | wave2d | mol3d; default jacobi2d)

#include <iostream>
#include <string>

#include "core/scenario.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cloudlb;

  const std::string app = argc > 1 ? argv[1] : "jacobi2d";

  std::cout << "Energy study: " << app
            << " under a 2-core interfering job\n"
            << "power model: 40 W base + 32.5 W per busy core, quad-core "
               "nodes\n\n";

  Table table({"cores", "balancer", "time (s)", "avg power (W)",
               "energy (kJ)", "energy overhead %"});
  for (const int cores : {4, 8, 16}) {
    ScenarioConfig config;
    config.app.name = app;
    config.app.iterations = 60;
    config.app_cores = cores;
    config.lb_period = 5;
    config.bg_iterations = 150;

    for (const char* balancer : {"null", "ia-refine"}) {
      config.balancer = balancer;
      const PenaltyResult r = run_penalty_experiment(config);
      table.add_row({std::to_string(cores), balancer,
                     Table::num(r.combined.app_elapsed.to_seconds(), 2),
                     Table::num(r.combined.avg_power_watts, 1),
                     Table::num(r.combined.energy_joules / 1000.0, 2),
                     Table::num(r.energy_overhead_pct, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nNote the pattern on every pair of rows: 'ia-refine' draws "
               "MORE power than\n'null' yet finishes with LESS energy — "
               "exactly the paper's point about base\npower dominating idle "
               "machines.\n";
  return 0;
}

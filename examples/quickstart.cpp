// Quickstart: run Jacobi2D on 4 virtualized cores with a 2-core
// interfering job, once without load balancing (the paper's "noLB") and
// once with the interference-aware refinement balancer, and compare
// timing penalty, energy overhead and the background job's slowdown.
//
// This is the paper's headline experiment in miniature.

#include <iostream>

#include "core/scenario.h"
#include "util/table.h"

int main() {
  using namespace cloudlb;

  ScenarioConfig config;
  config.app.name = "jacobi2d";
  config.app_cores = 4;
  config.lb_period = 10;

  Table table({"balancer", "app solo (s)", "app w/ interference (s)",
               "app penalty %", "BG penalty %", "energy overhead %",
               "migrations"});

  for (const char* balancer : {"null", "ia-refine"}) {
    config.balancer = balancer;
    const PenaltyResult r = run_penalty_experiment(config);
    table.add_row({balancer, Table::num(r.base.app_elapsed.to_seconds(), 3),
                   Table::num(r.combined.app_elapsed.to_seconds(), 3),
                   Table::num(r.app_penalty_pct, 1),
                   Table::num(r.bg_penalty_pct, 1),
                   Table::num(r.energy_overhead_pct, 1),
                   std::to_string(r.combined.lb_migrations)});
  }

  std::cout << "Jacobi2D on 4 cores, 2-core Wave2D background job\n\n";
  table.print(std::cout);
  std::cout << "\n'null' reproduces the paper's noLB bars; 'ia-refine' is "
               "the paper's scheme.\n";
  return 0;
}

// Public-cloud demo (the paper's §VI outlook): instead of one fixed
// 2-core interferer, a field of bursty tenant VMs appears and disappears
// on random cores. The interference-aware balancer keeps chasing it.
//
// Usage: cloud_multitenant [tenants] [balancer]
//        (defaults: 4 tenants, ia-refine)

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/scenario.h"
#include "metrics/profile.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cloudlb;

  const int tenants = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string balancer = argc > 2 ? argv[2] : "ia-refine";

  ScenarioConfig config;
  config.app.name = "wave2d";
  config.app.iterations = 60;
  config.app_cores = 8;
  config.balancer = balancer;
  config.lb_period = 3;
  config.with_background = false;  // tenants only
  config.tenants = tenants;
  config.tenant_config.mean_on_seconds = 1.0;
  config.tenant_config.mean_off_seconds = 1.0;

  TimelineTracer tracer;
  const RunResult run = run_scenario(config, &tracer);

  ScenarioConfig solo = config;
  solo.tenants = 0;
  const RunResult base = run_scenario(solo);

  std::cout << "Wave2D on 8 cores in a cloud with " << tenants
            << " bursty tenant VMs, balancer '" << balancer << "'\n\n";
  Table table({"metric", "value"});
  table.add_row({"tenant-free time (s)",
                 Table::num(base.app_elapsed.to_seconds(), 2)});
  table.add_row(
      {"time with tenants (s)", Table::num(run.app_elapsed.to_seconds(), 2)});
  table.add_row({"slowdown (%)",
                 Table::num(percent_increase(run.app_elapsed.to_seconds(),
                                             base.app_elapsed.to_seconds()),
                            1)});
  table.add_row({"migrations", std::to_string(run.lb_migrations)});
  table.print(std::cout);

  std::cout << "\nper-core utilization (tenant-hit cores show a reduced "
               "app share):\n";
  profile_table(profile_cores(tracer, config.app_cores, SimTime::zero(),
                              run.app_elapsed))
      .print(std::cout);
  std::cout << "\ntry: cloud_multitenant " << tenants
            << " null   # watch the slowdown without balancing\n";
  return 0;
}
